// MetricsRegistry / histogram percentile math: exact bucket edges, empty
// and overflow behavior, cross-node merge associativity, registry identity,
// and JSON export sanity.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace propeller::obs {
namespace {

TEST(HistogramTest, ExactBucketEdges) {
  Histogram h({1.0, 2.0, 5.0});
  // Upper bounds are inclusive: an observation equal to a bound lands in
  // that bound's bucket, so percentiles on edge values are exact.
  h.Observe(1.0);
  h.Observe(2.0);
  h.Observe(2.0);
  h.Observe(5.0);
  HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.count, 4u);
  EXPECT_EQ(s.counts, (std::vector<uint64_t>{1, 2, 1, 0}));
  // rank(p) = ceil(p/100 * 4): p25 -> 1st obs, p50 -> 2nd, p75 -> 3rd.
  EXPECT_DOUBLE_EQ(s.Percentile(25), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 2.0);
  EXPECT_DOUBLE_EQ(s.Percentile(75), 2.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 10.0 / 4.0);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h({1.0, 2.0});
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 0.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST(HistogramTest, OverflowBucketReportsObservedMax) {
  Histogram h({1.0, 2.0});
  h.Observe(0.5);
  h.Observe(17.25);  // beyond the last bound -> overflow bucket
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.counts.back(), 1u);
  EXPECT_DOUBLE_EQ(s.max, 17.25);
  // The top percentile falls in the overflow bucket, which has no upper
  // bound; it reports the observed maximum instead.
  EXPECT_DOUBLE_EQ(s.Percentile(100), 17.25);
}

TEST(HistogramTest, PercentileClampsOutOfRangeP) {
  Histogram h({1.0});
  h.Observe(1.0);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.Percentile(-5), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(250), 1.0);
}

// Cross-node merge: bucket counts add exactly, so merging is associative
// and commutative — the cluster-wide view cannot depend on merge order.
TEST(HistogramTest, MergeAssociativity) {
  auto make = [](std::vector<double> obs) {
    Histogram h({0.001, 0.01, 0.1, 1.0});
    for (double v : obs) h.Observe(v);
    return h.Snapshot();
  };
  HistogramSnapshot a = make({0.0005, 0.002, 0.05});
  HistogramSnapshot b = make({0.02, 0.7, 3.0});
  HistogramSnapshot c = make({0.001, 0.001, 9.0});

  HistogramSnapshot ab_c = a;  // (a + b) + c
  ASSERT_TRUE(ab_c.Merge(b).ok());
  ASSERT_TRUE(ab_c.Merge(c).ok());
  HistogramSnapshot bc = b;  // a + (b + c)
  ASSERT_TRUE(bc.Merge(c).ok());
  HistogramSnapshot a_bc = a;
  ASSERT_TRUE(a_bc.Merge(bc).ok());

  EXPECT_EQ(ab_c.counts, a_bc.counts);
  EXPECT_EQ(ab_c.count, a_bc.count);
  EXPECT_DOUBLE_EQ(ab_c.sum, a_bc.sum);
  EXPECT_DOUBLE_EQ(ab_c.max, a_bc.max);
  for (double p : {50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(ab_c.Percentile(p), a_bc.Percentile(p)) << "p" << p;
  }
  EXPECT_EQ(ab_c.count, 9u);
  EXPECT_DOUBLE_EQ(ab_c.max, 9.0);
}

TEST(HistogramTest, MergeIntoEmptyAdoptsBounds) {
  Histogram h({1.0, 2.0});
  h.Observe(1.5);
  HistogramSnapshot empty;  // default-constructed: no bounds yet
  ASSERT_TRUE(empty.Merge(h.Snapshot()).ok());
  EXPECT_EQ(empty.bounds, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(empty.count, 1u);
}

TEST(HistogramTest, MergeBoundsMismatchMergesScalarsOnly) {
  Histogram a({1.0, 2.0});
  a.Observe(1.0);
  Histogram b({1.0, 3.0});
  b.Observe(2.5);
  HistogramSnapshot s = a.Snapshot();
  Status st = s.Merge(b.Snapshot());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // Scalars still merged, so cluster totals stay truthful.
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.sum, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 2.5);
  // Bucket counts untouched.
  EXPECT_EQ(s.counts, (std::vector<uint64_t>{1, 0, 0}));
}

TEST(MetricsRegistryTest, NamesResolveToStableIdentities) {
  MetricsRegistry reg;
  Counter& c1 = reg.GetCounter("x.count");
  Counter& c2 = reg.GetCounter("x.count");
  EXPECT_EQ(&c1, &c2);
  Gauge& g1 = reg.GetGauge("x.gauge");
  EXPECT_EQ(&g1, &reg.GetGauge("x.gauge"));
  Histogram& h1 = reg.GetHistogram("x.lat");
  EXPECT_EQ(&h1, &reg.GetHistogram("x.lat"));
  c1.Add(3);
  c2.Add(2);
  EXPECT_EQ(reg.Snapshot().counters.at("x.count"), 5u);
}

TEST(MetricsRegistryTest, ConcurrentRecordingIsExact) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("n");
  Histogram& h = reg.GetHistogram("lat");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Add(1);
        h.Observe(0.001);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), uint64_t{kThreads} * kPerThread);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, uint64_t{kThreads} * kPerThread);
  EXPECT_DOUBLE_EQ(s.max, 0.001);
}

TEST(MetricsSnapshotTest, MergeAddsCountersAndGauges) {
  MetricsRegistry a;
  a.GetCounter("c").Add(2);
  a.GetGauge("g").Set(1.5);
  a.GetHistogram("h").Observe(0.01);
  MetricsRegistry b;
  b.GetCounter("c").Add(3);
  b.GetCounter("only_b").Add(1);
  b.GetGauge("g").Set(2.5);
  b.GetHistogram("h").Observe(0.02);

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.counters.at("c"), 5u);
  EXPECT_EQ(merged.counters.at("only_b"), 1u);
  EXPECT_DOUBLE_EQ(merged.gauges.at("g"), 4.0);  // per-node quantities sum
  EXPECT_EQ(merged.histograms.at("h").count, 2u);
}

TEST(ExportTest, MetricsJsonCarriesPercentiles) {
  MetricsRegistry reg;
  reg.GetCounter("net.bytes_sent").Add(123);
  Histogram& h = reg.GetHistogram("in.search.latency_s");
  for (int i = 0; i < 100; ++i) h.Observe(0.001);
  std::string json = MetricsToJson(reg.Snapshot());
  EXPECT_NE(json.find("\"net.bytes_sent\": 123"), std::string::npos) << json;
  EXPECT_NE(json.find("\"in.search.latency_s\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(ExportTest, ReportMergesSections) {
  MetricsRegistry a;
  a.GetCounter("c").Add(1);
  MetricsRegistry b;
  b.GetCounter("c").Add(2);
  std::string json = MetricsReportToJson(
      {{"in.10", a.Snapshot()}, {"in.11", b.Snapshot()}});
  EXPECT_NE(json.find("\"sections\""), std::string::npos);
  EXPECT_NE(json.find("\"in.10\""), std::string::npos);
  EXPECT_NE(json.find("\"merged\""), std::string::npos);
  EXPECT_NE(json.find("\"c\": 3"), std::string::npos) << json;
}

TEST(ExportTest, ChromeTraceShapesSpans) {
  Span s;
  s.trace_id = 7;
  s.span_id = 9;
  s.parent_id = 0;
  s.name = "client.search";
  s.node = 100;
  s.start_s = 1.5;
  s.end_s = 1.75;
  s.tags.emplace_back("files", "4");
  std::string json = SpansToChromeTrace({s});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"client.search\""), std::string::npos);
  // Timestamps exported in microseconds.
  EXPECT_NE(json.find("1500000"), std::string::npos) << json;
  EXPECT_NE(json.find("250000"), std::string::npos) << json;
}

TEST(TraceIdTest, DerivationIsDeterministicAndNonZero) {
  EXPECT_EQ(DeriveTraceId(100, 0), DeriveTraceId(100, 0));
  EXPECT_NE(DeriveTraceId(100, 0), DeriveTraceId(100, 1));
  EXPECT_NE(DeriveTraceId(100, 0), 0u);
  uint64_t t = DeriveTraceId(100, 0);
  EXPECT_EQ(DeriveSpanId(t, 0, "rpc", 10, 1.5),
            DeriveSpanId(t, 0, "rpc", 10, 1.5));
  EXPECT_NE(DeriveSpanId(t, 0, "rpc", 10, 1.5),
            DeriveSpanId(t, 0, "rpc", 11, 1.5));
  EXPECT_NE(DeriveSpanId(t, 0, "rpc", 10, 1.5), 0u);
}

}  // namespace
}  // namespace propeller::obs
