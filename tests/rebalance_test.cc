// Master-instructed group rebalancing (Fig. 6: "migrate indices/ACGs to
// other IndexNodes under the instructions from MasterNode").
#include <gtest/gtest.h>

#include "core/cluster.h"

namespace propeller::core {
namespace {

using index::AttrValue;
using index::CmpOp;

FileUpdate Upsert(FileId f, int64_t size) {
  FileUpdate u;
  u.file = f;
  u.attrs.Set("size", AttrValue(size));
  return u;
}

ClusterConfig Config() {
  ClusterConfig cfg;
  cfg.index_nodes = 4;
  cfg.master.acg_policy.cluster_target = 10;  // groups of 10 files
  return cfg;
}

// Creates `files` files; groups spread by least-loaded placement.
void Populate(PropellerCluster& cluster, FileId first, uint64_t files) {
  std::vector<FileUpdate> updates;
  for (FileId f = first; f < first + files; ++f) updates.push_back(Upsert(f, 5));
  ASSERT_TRUE(
      cluster.client().BatchUpdate(std::move(updates), cluster.now()).ok());
}

size_t MaxGroupsOnANode(PropellerCluster& cluster) {
  size_t hi = 0;
  for (size_t i = 0; i < cluster.num_index_nodes(); ++i) {
    hi = std::max(hi, cluster.index_node(i).NumGroups());
  }
  return hi;
}

TEST(RebalanceTest, SpreadsGroupsAfterNodeOutage) {
  PropellerCluster cluster(Config());
  ASSERT_TRUE(cluster.client()
                  .CreateIndex({"by_size", index::IndexType::kBTree, {"size"}})
                  .ok());

  // Node 0 is down while 160 files (16 groups) arrive: the other three
  // nodes absorb everything.
  NodeId down = cluster.index_node(0).id();
  cluster.transport().SetNodeDown(down, true);
  Populate(cluster, 1, 160);
  EXPECT_EQ(cluster.index_node(0).NumGroups(), 0u);

  // Node 0 returns; the master rebalances.
  cluster.transport().SetNodeDown(down, false);
  sim::Cost cost;
  size_t moved = cluster.master().RunRebalance(&cost);
  EXPECT_GT(moved, 0u);
  EXPECT_GT(cost.seconds(), 0.0);
  EXPECT_GT(cluster.index_node(0).NumGroups(), 0u) << "returned node still idle";
  // Spread: no node holds more than ceil(16/4) + slack = 5 groups.
  EXPECT_LE(MaxGroupsOnANode(cluster), 5u);

  // No data lost: every file still searchable exactly once.
  Predicate p;
  p.And("size", CmpOp::kEq, AttrValue(int64_t{5}));
  auto r = cluster.client().Search(p, "by_size");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->files.size(), 160u);
}

TEST(RebalanceTest, BalancedClusterIsANoOp) {
  PropellerCluster cluster(Config());
  ASSERT_TRUE(cluster.client()
                  .CreateIndex({"by_size", index::IndexType::kBTree, {"size"}})
                  .ok());
  Populate(cluster, 1, 160);  // least-loaded placement: already even
  sim::Cost cost;
  EXPECT_EQ(cluster.master().RunRebalance(&cost), 0u);
  EXPECT_DOUBLE_EQ(cost.seconds(), 0.0);
}

TEST(RebalanceTest, UpdatesRouteCorrectlyAfterRebalance) {
  PropellerCluster cluster(Config());
  ASSERT_TRUE(cluster.client()
                  .CreateIndex({"by_size", index::IndexType::kBTree, {"size"}})
                  .ok());
  NodeId down = cluster.index_node(0).id();
  cluster.transport().SetNodeDown(down, true);
  Populate(cluster, 1, 120);
  cluster.transport().SetNodeDown(down, false);
  ASSERT_GT(cluster.master().RunRebalance(nullptr), 0u);

  // Updating a migrated file must land on its new node and be visible.
  std::vector<FileUpdate> updates;
  for (FileId f = 1; f <= 120; ++f) updates.push_back(Upsert(f, 9));
  ASSERT_TRUE(cluster.client().BatchUpdate(std::move(updates), cluster.now()).ok());
  Predicate p;
  p.And("size", CmpOp::kEq, AttrValue(int64_t{9}));
  auto r = cluster.client().Search(p, "by_size");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->files.size(), 120u);
}

TEST(RebalanceTest, SkipsDownNodes) {
  PropellerCluster cluster(Config());
  ASSERT_TRUE(cluster.client()
                  .CreateIndex({"by_size", index::IndexType::kBTree, {"size"}})
                  .ok());
  NodeId down = cluster.index_node(0).id();
  cluster.transport().SetNodeDown(down, true);
  Populate(cluster, 1, 120);
  // Node still down: rebalancing must not try to move anything onto it.
  (void)cluster.master().RunRebalance(nullptr);
  EXPECT_EQ(cluster.index_node(0).NumGroups(), 0u);

  Predicate p;
  p.And("size", CmpOp::kEq, AttrValue(int64_t{5}));
  auto r = cluster.client().Search(p, "by_size");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->files.size(), 120u);
}

}  // namespace
}  // namespace propeller::core
