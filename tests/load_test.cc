// Open-loop traffic engine + admission control (ctest -L load, tsan-load
// preset): schedule determinism, Zipfian/diurnal workload shaping, the
// bounded virtual-time admission queue (never exceeds its bound, sheds
// with kOverloaded and zero side effects), bit-identical behavior when the
// engine is unused, the FpsCopier tick-size-invariance regression, and an
// open-loop chaos soak asserting zero acknowledged-write loss across a
// node wipe and recovery.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/cluster.h"
#include "core/proto.h"
#include "fs/vfs.h"
#include "load/traffic_engine.h"
#include "load/workload.h"
#include "net/fault.h"
#include "workload/copier.h"
#include "workload/dataset.h"

namespace propeller::load {
namespace {

using core::ClusterConfig;
using core::PropellerCluster;
using index::AttrValue;
using index::CmpOp;
using index::FileId;
using index::Predicate;

index::IndexSpec SizeIndex() {
  return {"by_size", index::IndexType::kBTree, {"size"}};
}

// --- schedule generation -------------------------------------------------

TEST(ScheduleTest, DeterministicPerSeedAndOrdered) {
  TrafficSpec spec;
  spec.offered_qps = 500;
  spec.duration_s = 4;
  spec.start_s = 2.5;
  spec.seed = 77;
  spec.num_files = 1000;
  spec.tenants = {{"a", 2.0, 0.8, 0.9}, {"b", 1.0, 0.1, 0.6}};

  OpenLoopEngine e1(spec), e2(spec);
  ASSERT_EQ(e1.schedule().size(), e2.schedule().size());
  ASSERT_GT(e1.schedule().size(), 1000u);  // ~2000 expected
  for (size_t i = 0; i < e1.schedule().size(); ++i) {
    const Arrival &a = e1.schedule()[i], &b = e2.schedule()[i];
    ASSERT_EQ(a.t_s, b.t_s);  // bit-identical, not approximately equal
    ASSERT_EQ(a.tenant, b.tenant);
    ASSERT_EQ(a.op, b.op);
    ASSERT_EQ(a.rank, b.rank);
    ASSERT_EQ(a.file, b.file);
  }

  double prev = 0;
  for (const Arrival& a : e1.schedule()) {
    EXPECT_GE(a.t_s, spec.start_s);
    EXPECT_LT(a.t_s, spec.start_s + spec.duration_s);
    EXPECT_GE(a.t_s, prev);  // arrival order
    EXPECT_GE(a.file, 1u);
    EXPECT_LE(a.file, spec.num_files);
    EXPECT_LT(a.rank, spec.num_files);
    prev = a.t_s;
  }

  spec.seed = 78;
  OpenLoopEngine e3(spec);
  bool differs = e3.schedule().size() != e1.schedule().size();
  for (size_t i = 0; !differs && i < e1.schedule().size(); ++i) {
    differs = e1.schedule()[i].t_s != e3.schedule()[i].t_s;
  }
  EXPECT_TRUE(differs) << "different seeds produced the same schedule";
}

TEST(ScheduleTest, TenantWeightsAndMixesShapeTheSchedule) {
  TrafficSpec spec;
  spec.offered_qps = 2000;
  spec.duration_s = 5;
  spec.seed = 9;
  spec.num_files = 500;
  // Tenant 0 gets 3x the traffic and only searches; tenant 1 only updates.
  spec.tenants = {{"heavy", 3.0, 1.0, 0.9}, {"light", 1.0, 0.0, 0.9}};
  OpenLoopEngine engine(spec);

  uint64_t counts[2] = {0, 0};
  for (const Arrival& a : engine.schedule()) {
    ASSERT_LT(a.tenant, 2u);
    ++counts[a.tenant];
    if (a.tenant == 0) {
      EXPECT_EQ(a.op, OpKind::kSearch);
    } else {
      EXPECT_EQ(a.op, OpKind::kUpdate);
    }
  }
  const double share =
      static_cast<double>(counts[0]) / static_cast<double>(counts[0] + counts[1]);
  EXPECT_NEAR(share, 0.75, 0.03);
}

TEST(ScheduleTest, DiurnalModulationMovesLoadIntoThePeak) {
  TrafficSpec spec;
  spec.offered_qps = 1000;
  spec.duration_s = 10;
  spec.seed = 4;
  spec.diurnal_amplitude = 0.8;
  spec.diurnal_period_s = 10;  // sin > 0 over the first half of the run
  OpenLoopEngine engine(spec);

  uint64_t first_half = 0, second_half = 0;
  for (const Arrival& a : engine.schedule()) {
    (a.t_s < 5.0 ? first_half : second_half) += 1;
  }
  // rate(t) = 1000 * (1 + 0.8 sin(2pi t/10)): the first half integrates to
  // ~7546 arrivals, the second to ~2454.
  EXPECT_GT(first_half, second_half * 2);
  // Thinning preserves the offered total on average.
  EXPECT_NEAR(static_cast<double>(first_half + second_half), 10'000, 500);
}

TEST(ScheduleTest, ZipfianPopularityConcentratesOnTheHead) {
  TrafficSpec spec;
  spec.offered_qps = 2000;
  spec.duration_s = 5;
  spec.seed = 12;
  spec.num_files = 1000;
  spec.tenants = {{"t", 1.0, 0.5, 0.9}};
  OpenLoopEngine engine(spec);

  uint64_t head = 0;  // ranks in the top 10%
  for (const Arrival& a : engine.schedule()) {
    if (a.rank < spec.num_files / 10) ++head;
  }
  EXPECT_GT(head * 2, engine.schedule().size())
      << "theta=0.9 should put over half the mass on the top 10% of ranks";
}

// --- wire format ---------------------------------------------------------

TEST(ProtoTest, SearchRequestArrivalStampRoundTrips) {
  core::SearchRequest req;
  req.groups = {7, 9};
  req.predicate.And("size", CmpOp::kGe, AttrValue(int64_t{42}));
  req.epoch = 3;
  req.arrival_s = 12.5;
  auto out = core::Decode<core::SearchRequest>(core::Encode(req));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->arrival_s, 12.5);
  EXPECT_EQ(out->epoch, 3u);
  EXPECT_EQ(out->groups, req.groups);

  // With read-your-writes floors present too.
  req.min_seqs = {{7, 11}};
  out = core::Decode<core::SearchRequest>(core::Encode(req));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->arrival_s, 12.5);
  ASSERT_EQ(out->min_seqs.size(), 1u);
  EXPECT_EQ(out->min_seqs[0].seq, 11u);

  // Unstamped: the field is absent from the wire (not a zero), so legacy
  // traffic is byte-identical with the feature unused.
  core::SearchRequest plain;
  plain.groups = {7, 9};
  plain.predicate.And("size", CmpOp::kGe, AttrValue(int64_t{42}));
  core::SearchRequest stamped = plain;
  stamped.arrival_s = 0.25;
  EXPECT_LT(core::Encode(plain).size(), core::Encode(stamped).size());
  auto back = core::Decode<core::SearchRequest>(core::Encode(plain));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->arrival_s, 0.0);
}

TEST(ProtoTest, StageUpdatesAdmissionFlagRoundTrips) {
  core::StageUpdatesRequest req;
  req.group = 5;
  req.now_s = 1.5;
  core::FileUpdate u;
  u.file = 99;
  u.attrs.Set("size", AttrValue(int64_t{7}));
  req.updates.push_back(u);
  req.admission = 1;
  auto out = core::Decode<core::StageUpdatesRequest>(core::Encode(req));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->admission, 1);
  EXPECT_EQ(out->replica_role, core::kReplicaRoleNone);

  // Admission composes with a replica role.
  req.replica_role = core::kReplicaRolePrimary;
  req.epoch = 8;
  out = core::Decode<core::StageUpdatesRequest>(core::Encode(req));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->admission, 1);
  EXPECT_EQ(out->replica_role, core::kReplicaRolePrimary);
  EXPECT_EQ(out->epoch, 8u);

  // Unflagged stays the legacy encoding.
  req.admission = 0;
  req.replica_role = core::kReplicaRoleNone;
  req.epoch = 0;
  core::StageUpdatesRequest legacy;
  legacy.group = 5;
  legacy.now_s = 1.5;
  legacy.updates.push_back(u);
  EXPECT_EQ(core::Encode(req), core::Encode(legacy));
  out = core::Decode<core::StageUpdatesRequest>(core::Encode(req));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->admission, 0);
}

// --- admission queue -----------------------------------------------------

// Floods one small cluster far past capacity through the engine.
RunStats Flood(PropellerCluster& cluster) {
  workload::DatasetSpec dspec;
  dspec.num_files = 200;
  (void)cluster.client().CreateIndex(SizeIndex());
  (void)cluster.client().BatchUpdate(workload::SyntheticRows(1, 200, dspec),
                                     cluster.now());
  cluster.AdvanceTime(6.0);
  // Warm the read path (placement cache, index pages) with unstamped
  // searches so the admitted ops under flood measure queueing, not
  // first-touch cache misses.
  Predicate warm;
  warm.And("size", CmpOp::kGe, AttrValue(int64_t{1}));
  for (int i = 0; i < 8; ++i) (void)cluster.client().Search(warm, "by_size");

  TrafficSpec spec;
  spec.offered_qps = 20e6;  // far past any plausible capacity
  spec.duration_s = 2000.0 / spec.offered_qps;
  spec.start_s = cluster.now();
  spec.seed = 3;
  spec.num_files = 200;
  OpenLoopEngine engine(spec);
  RunOptions opts;
  opts.deadline_s = 0;  // classification by shed/ok only
  return engine.Run(cluster, opts);
}

TEST(AdmissionTest, BoundedQueueNeverExceedsBoundAndSheds) {
  ClusterConfig cfg;
  cfg.index_nodes = 2;
  cfg.master.acg_policy.cluster_target = 50;
  cfg.admission_control = true;
  cfg.admission_queue_bound = 4;
  PropellerCluster cluster(cfg);
  RunStats stats = Flood(cluster);

  EXPECT_GT(stats.ok, 0u);
  EXPECT_GT(stats.shed, stats.ok) << "a 10000x overload must shed most ops";
  EXPECT_GT(stats.queue_peak, 0.0);
  EXPECT_LE(stats.queue_peak, 4.0) << "waiting line exceeded its bound";
  for (size_t i = 0; i < cluster.num_index_nodes(); ++i) {
    obs::MetricsSnapshot snap = cluster.index_node(i).MetricsSnapshot();
    EXPECT_LE(snap.gauges["in.admit.queue_peak"], 4.0) << "node " << i;
  }

  const auto counters = cluster.Stats().metrics.counters;
  const auto shed_it = counters.find("in.admit.shed");
  ASSERT_TRUE(shed_it != counters.end());
  EXPECT_GT(shed_it->second, 0u);
  // Backpressure is visible at every layer: transport counts kOverloaded
  // responses, the client counts shed searches/updates...
  EXPECT_GT(counters.at("net.responses.overloaded"), 0u);
  EXPECT_GT(counters.at("client.search.shed") + counters.at("client.update.shed"),
            0u);
  // ...and kOverloaded is never retried (only kUnavailable is): a clean
  // transport means a retry-free run even under total overload.
  EXPECT_EQ(counters.at("client.rpc.retries"), 0u);
}

TEST(AdmissionTest, UnboundedQueueModelsWaitingButNeverSheds) {
  auto flood_with_bound = [](size_t bound) {
    ClusterConfig cfg;
    cfg.index_nodes = 2;
    cfg.master.acg_policy.cluster_target = 50;
    cfg.admission_control = true;
    cfg.admission_queue_bound = bound;
    // Segmented groups and a fast network keep the non-queue latency
    // components tight (snapshot reads instead of commit-barrier drains,
    // microsecond transfers instead of a ~0.5ms fixed overhead), so the
    // p99 comparison below measures queueing delay and nothing else.
    cfg.segmented_index = true;
    cfg.net.latency_us = 3;
    cfg.net.bandwidth_mb_per_s = 4000;
    PropellerCluster cluster(cfg);
    return Flood(cluster);
  };
  RunStats unbounded = flood_with_bound(0);  // the "admission off" arm
  RunStats bounded = flood_with_bound(4);

  EXPECT_EQ(unbounded.shed, 0u);
  EXPECT_EQ(unbounded.failed, 0u);
  EXPECT_EQ(unbounded.ok, unbounded.offered);
  EXPECT_GT(unbounded.queue_peak, 100.0)
      << "the waiting line should grow without bound";
  // Everything is accepted, so every sojourn pays the full backlog's
  // queueing delay — the tail collapse the saturation bench measures.
  // The bounded queue keeps admitted waits under bound/workers service
  // times, orders of magnitude shorter.
  EXPECT_GT(unbounded.p99_s, bounded.p99_s * 5);
}

TEST(AdmissionTest, DeterministicRunToRun) {
  auto run = [] {
    ClusterConfig cfg;
    cfg.index_nodes = 2;
    cfg.master.acg_policy.cluster_target = 50;
    cfg.admission_control = true;
    cfg.admission_queue_bound = 4;
    PropellerCluster cluster(cfg);
    return Flood(cluster);
  };
  RunStats a = run(), b = run();
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.p50_s, b.p50_s);  // bitwise, not approximately
  EXPECT_EQ(a.p99_s, b.p99_s);
  EXPECT_EQ(a.queue_peak, b.queue_peak);
}

// With the engine unused (no arrival stamps), an admission-enabled cluster
// is bit-identical to a plain one: same simulated costs, same wire bytes.
TEST(AdmissionTest, UnstampedTrafficIsBitIdenticalWithAdmissionOn) {
  auto run = [](bool admission) {
    ClusterConfig cfg;
    cfg.index_nodes = 2;
    cfg.master.acg_policy.cluster_target = 50;
    cfg.admission_control = admission;
    cfg.admission_queue_bound = 1;  // tightest bound: would shed if consulted
    PropellerCluster cluster(cfg);
    (void)cluster.client().CreateIndex(SizeIndex());
    workload::DatasetSpec dspec;
    dspec.num_files = 300;
    (void)cluster.client().BatchUpdate(workload::SyntheticRows(1, 300, dspec),
                                       cluster.now());
    cluster.AdvanceTime(6.0);
    Predicate p;
    p.And("size", CmpOp::kGe, AttrValue(int64_t{1000}));
    std::vector<double> costs;
    for (int i = 0; i < 20; ++i) {
      auto r = cluster.client().Search(p, "by_size");  // no arrival stamp
      EXPECT_TRUE(r.ok());
      costs.push_back(r->cost.seconds());
    }
    auto counters = cluster.Stats().metrics.counters;
    return std::make_pair(costs, counters.at("net.bytes_sent"));
  };
  auto [costs_off, bytes_off] = run(false);
  auto [costs_on, bytes_on] = run(true);
  EXPECT_EQ(costs_off, costs_on);  // exact, element-wise
  EXPECT_EQ(bytes_off, bytes_on);
}

// --- FpsCopier tick-size invariance (regression) -------------------------

TEST(CopierTest, CopyCountIsTickSizeInvariant) {
  fs::Vfs coarse_vfs, fine_vfs;
  workload::FpsCopier coarse(&coarse_vfs, /*fps=*/7.0, "/dst", /*seed=*/3);
  workload::FpsCopier fine(&fine_vfs, /*fps=*/7.0, "/dst", /*seed=*/3);

  ASSERT_TRUE(coarse.AdvanceTo(9.5).ok());
  // The same window walked in uneven small steps (including steps smaller
  // than one inter-copy gap) must produce the same copies.
  for (double t = 0.05; t < 9.5; t += 0.05) ASSERT_TRUE(fine.AdvanceTo(t).ok());
  ASSERT_TRUE(fine.AdvanceTo(9.5).ok());
  EXPECT_EQ(coarse.TotalCopied(), fine.TotalCopied());
  EXPECT_EQ(coarse.TotalCopied(), static_cast<uint64_t>(9.5 * 7.0));
  EXPECT_EQ(coarse_vfs.ns().NumFiles(), fine_vfs.ns().NumFiles());
}

TEST(CopierTest, NonMonotoneClockNeverDoubleCounts) {
  fs::Vfs vfs;
  workload::FpsCopier copier(&vfs, /*fps=*/10.0, "/dst");
  ASSERT_TRUE(copier.AdvanceTo(2.0).ok());
  EXPECT_EQ(copier.TotalCopied(), 20u);
  // A clock that jumps backwards (or re-delivers the same instant) copies
  // nothing extra.
  EXPECT_EQ(*copier.AdvanceTo(1.0), 0u);
  EXPECT_EQ(*copier.AdvanceTo(2.0), 0u);
  EXPECT_EQ(copier.TotalCopied(), 20u);
  // And the schedule picks up exactly where virtual time left off.
  EXPECT_EQ(*copier.AdvanceTo(3.0), 10u);
}

// --- open-loop chaos soak ------------------------------------------------

// Engine traffic (including a flood phase that sheds) runs across a flaky
// network, a permanent node wipe, and journal recovery.  Every update the
// engine saw acknowledged must be queryable at the end; every update that
// was shed (and whose file was never acknowledged elsewhere) must NOT be.
TEST(OpenLoopSoakTest, ZeroAcknowledgedWriteLossAcrossWipeAndRecovery) {
  ClusterConfig cfg;
  cfg.index_nodes = 4;
  cfg.master.acg_policy.cluster_target = 8;
  cfg.master.acg_policy.split_threshold = 1000;
  cfg.master.acg_policy.merge_limit = 1000;
  cfg.recovery_journal = true;
  cfg.admission_control = true;
  cfg.admission_queue_bound = 32;
  PropellerCluster cluster(cfg);
  ASSERT_TRUE(cluster.client().CreateIndex(SizeIndex()).ok());
  cluster.AdvanceTime(1.0);

  std::map<FileId, int64_t> model;          // acked updates, last write wins
  std::set<FileId> shed_files, failed_files;
  auto sink = [&](const Arrival& a, Fate fate, const Status&, double) {
    if (a.op != OpKind::kUpdate) return;
    switch (fate) {
      case Fate::kOk:
        model[a.file] = *OpenLoopEngine::UpdateFor(a).attrs.FindInt("size");
        break;
      case Fate::kShed:
        shed_files.insert(a.file);
        break;
      case Fate::kFailed:
        failed_files.insert(a.file);
        break;
    }
  };
  auto run_phase = [&](uint64_t seed, double offered_qps, uint64_t requests) {
    TrafficSpec spec;
    spec.offered_qps = offered_qps;
    spec.duration_s = static_cast<double>(requests) / offered_qps;
    spec.start_s = cluster.now();
    spec.seed = seed;
    spec.num_files = 300;
    spec.tenants = {{"mixed", 1.0, 0.6, 0.9}};
    OpenLoopEngine engine(spec);
    RunOptions opts;
    opts.sink = sink;
    return engine.Run(cluster, opts);
  };
  // Checks that everything acknowledged so far is queryable, exactly.
  auto check_no_loss = [&](const char* phase) {
    SCOPED_TRACE(phase);
    Predicate p;
    p.And("size", CmpOp::kGe, AttrValue(int64_t{1}));
    auto r = cluster.client().Search(p, "by_size");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    std::set<FileId> got(r->files.begin(), r->files.end());
    for (const auto& [f, size] : model) {
      EXPECT_TRUE(got.count(f) != 0u)
          << "acknowledged write to file " << f << " lost";
    }
    // Shed batches must have had zero side effects: a file only ever
    // touched by shed updates cannot exist anywhere.
    for (FileId f : shed_files) {
      if (model.count(f) != 0u || failed_files.count(f) != 0u) continue;
      EXPECT_TRUE(got.count(f) == 0u)
          << "file " << f << " was only ever shed, yet it is indexed";
    }
  };

  // Phase 1 — clean traffic well under capacity.
  RunStats p1 = run_phase(21, 50'000, 1500);
  EXPECT_GT(p1.ok, 0u);
  EXPECT_EQ(p1.failed, 0u);
  cluster.AdvanceTime(1.0);
  check_no_loss("after clean phase");

  // Phase 2 — flood far past capacity: admission sheds most of it.
  RunStats p2 = run_phase(22, 20e6, 1500);
  EXPECT_GT(p2.shed, 0u);
  cluster.AdvanceTime(1.0);
  check_no_loss("after flood phase");

  // Phase 3 — flaky search path (updates stay clean, the model stays
  // authoritative) while open-loop traffic keeps arriving.
  auto plan = std::make_shared<net::FaultPlan>(0x10adu);
  plan->AddRule(net::FaultRule{.method = "in.search",
                               .drop_prob = 0.2,
                               .delay_prob = 0.2,
                               .delay_s = 0.01});
  cluster.transport().SetFaultPlan(plan);
  (void)run_phase(23, 50'000, 1000);
  cluster.transport().SetFaultPlan(nullptr);
  cluster.AdvanceTime(1.0);
  check_no_loss("after flaky-network phase");

  // Phase 4 — permanent loss of the most loaded node; the journal rebuilds
  // its groups on survivors.
  size_t victim = 0;
  for (size_t i = 1; i < cluster.num_index_nodes(); ++i) {
    if (cluster.index_node(i).NumGroups() >
        cluster.index_node(victim).NumGroups()) {
      victim = i;
    }
  }
  ASSERT_GT(cluster.index_node(victim).NumGroups(), 0u);
  cluster.KillIndexNode(victim, /*wipe=*/true);
  for (int i = 0; i < 6; ++i) cluster.AdvanceTime(1.0);  // detector fires
  ASSERT_GE(cluster.Stats().recoveries, 1u);
  check_no_loss("after wipe and recovery");

  // Phase 5 — the cluster keeps taking open-loop traffic afterwards.
  RunStats p5 = run_phase(24, 50'000, 1000);
  EXPECT_GT(p5.ok, 0u);
  cluster.AdvanceTime(1.0);
  check_no_loss("after post-recovery phase");
  EXPECT_GT(model.size(), 0u);
  EXPECT_GT(shed_files.size(), 0u) << "the flood phase should have shed updates";
}

}  // namespace
}  // namespace propeller::load
