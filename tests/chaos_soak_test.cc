// Seeded chaos soak: a Postmark-style create/update/search workload runs
// while transport faults fire and Index Nodes are killed (one permanently,
// mid-workload) and revived.  The cluster runs the wall-clock parallel
// engine with the shared recovery journal and degraded-search mode on, so
// the test is meaningful under TSan (ctest -L fault).
//
// Determinism: the workload and fault schedules are driven by fixed seeds
// (override with PROPELLER_CHAOS_SEED=<n> to soak a single custom seed).
// Under parallel execution the *order* of fault draws follows the thread
// schedule, so assertions inside faulty phases are schedule-robust
// (results must be a subset of the model, exact when not degraded); exact
// equality is asserted in the fault-free phases, including the final
// post-recovery sweep which must see every acknowledged record.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/cluster.h"
#include "net/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace propeller::core {
namespace {

// --- observability consistency (runs with the tracer on for the whole
// soak: faults, kills, and recoveries must never corrupt the span tree or
// make a counter go backwards) ---

std::map<std::string, uint64_t> MergedCounters(const PropellerCluster& c) {
  obs::MetricsSnapshot merged;
  for (const auto& [name, snap] : c.PerNodeMetrics()) merged.Merge(snap);
  return merged.counters;
}

// Every counter present in `prev` must still exist and be >= its previous
// value — node wipes and recoveries must not reset cluster-wide totals.
void ExpectCountersMonotone(const std::map<std::string, uint64_t>& prev,
                            const std::map<std::string, uint64_t>& cur,
                            const char* phase) {
  for (const auto& [name, v] : prev) {
    auto it = cur.find(name);
    ASSERT_TRUE(it != cur.end()) << name << " vanished during " << phase;
    EXPECT_GE(it->second, v) << name << " went backwards during " << phase;
  }
}

// No orphan spans: within each trace, every non-root parent_id must
// resolve to a recorded span.  Kills and fault-injected drops end spans
// early; they must never lose a parent.
void ExpectNoOrphanSpans(const std::vector<obs::Span>& spans) {
  std::map<uint64_t, std::set<uint64_t>> ids_by_trace;
  for (const auto& s : spans) ids_by_trace[s.trace_id].insert(s.span_id);
  for (const auto& s : spans) {
    if (s.parent_id == 0) continue;
    EXPECT_TRUE(ids_by_trace[s.trace_id].count(s.parent_id) != 0u)
        << "orphan span '" << s.name << "' (node " << s.node << ")";
    EXPECT_LE(s.start_s, s.end_s) << s.name;
  }
}

using index::AttrValue;
using index::CmpOp;

IndexSpec SizeIndex() { return {"by_size", index::IndexType::kBTree, {"size"}}; }

class ChaosSoak {
 public:
  explicit ChaosSoak(uint64_t seed, int replication_factor = 1) : rng_(seed) {
    ClusterConfig cfg;
    cfg.index_nodes = 5;
    cfg.master.acg_policy.cluster_target = 8;
    cfg.master.acg_policy.split_threshold = 1000;
    cfg.master.acg_policy.merge_limit = 1000;
    cfg.parallel_execution = true;
    cfg.recovery_journal = true;
    cfg.replication_factor = replication_factor;
    cfg.client.allow_partial_search = true;
    cfg.client.retry.max_attempts = 3;
    cluster_ = std::make_unique<PropellerCluster>(cfg);
    cluster_->tracer().Enable();  // soak with full tracing overhead on
    EXPECT_TRUE(cluster_->client().CreateIndex(SizeIndex()).ok());
    cluster_->AdvanceTime(1.0);  // establish heartbeat history
  }

  // Postmark-ish transaction mix: mostly touch existing files, sometimes
  // create new ones.  Only acknowledged batches enter the model.
  void RunUpdates(int batches, int batch_size) {
    for (int b = 0; b < batches; ++b) {
      std::vector<FileUpdate> updates;
      std::map<FileId, int64_t> staged;
      for (int i = 0; i < batch_size; ++i) {
        FileId f;
        if (model_.empty() || rng_.Bernoulli(0.3)) {
          f = next_file_++;
        } else {
          auto it = model_.begin();
          std::advance(it, static_cast<long>(rng_.Uniform(model_.size())));
          f = it->first;
        }
        int64_t size = rng_.UniformInt(1, 1'000'000);
        FileUpdate u;
        u.file = f;
        u.attrs.Set("size", AttrValue(size));
        updates.push_back(std::move(u));
        staged[f] = size;  // last write in the batch wins
      }
      auto r = cluster_->client().BatchUpdate(std::move(updates),
                                              cluster_->now());
      if (r.ok()) {
        for (const auto& [f, size] : staged) model_[f] = size;
      }
      // else: a partial batch failure — conservatively keep the model's
      // old values out of the faulty buckets by tracking nothing.  The
      // chaos phases only run updates while the transport is clean, so
      // this branch firing means the test's phase discipline broke.
      cluster_->AdvanceTime(0.1);
    }
  }

  // One range search; checks it against the model.  `expect_exact` demands
  // a clean full answer; otherwise a degraded (partial) answer must still
  // be sound: a subset of the model's matches with the failures named.
  void CheckSearch(bool expect_exact) {
    int64_t threshold = rng_.UniformInt(1, 1'000'000);
    Predicate p;
    p.And("size", CmpOp::kGe, AttrValue(threshold));
    std::set<FileId> expected;
    for (const auto& [f, size] : model_) {
      if (size >= threshold) expected.insert(f);
    }

    auto r = cluster_->client().Search(p, "by_size");
    if (!r.ok()) {
      // Even with retries a whole fan-out can exhaust its attempts; that
      // is only acceptable while faults are active.
      EXPECT_FALSE(expect_exact) << r.status().ToString();
      return;
    }
    std::set<FileId> got(r->files.begin(), r->files.end());
    if (expect_exact) {
      EXPECT_FALSE(r->partial) << "degraded answer in a fault-free phase";
      EXPECT_EQ(got, expected);
    } else {
      for (FileId f : got) {
        EXPECT_TRUE(expected.count(f) != 0u)
            << "file " << f << " returned but never acknowledged at size >= "
            << threshold;
      }
      if (!r->partial) {
        EXPECT_EQ(got, expected);
      } else {
        EXPECT_FALSE(r->node_errors.empty());
      }
    }
  }

  PropellerCluster& cluster() { return *cluster_; }
  Rng& rng() { return rng_; }
  size_t model_size() const { return model_.size(); }

 private:
  Rng rng_;
  std::unique_ptr<PropellerCluster> cluster_;
  std::map<FileId, int64_t> model_;
  FileId next_file_ = 1;
};

void RunSoak(uint64_t seed, int replication_factor = 1) {
  SCOPED_TRACE("chaos seed " + std::to_string(seed) + " r=" +
               std::to_string(replication_factor));
  ChaosSoak soak(seed, replication_factor);
  PropellerCluster& cluster = soak.cluster();

  // Phase 1 — clean warm-up: exact answers required.
  soak.RunUpdates(/*batches=*/6, /*batch_size=*/40);
  for (int i = 0; i < 3; ++i) soak.CheckSearch(/*expect_exact=*/true);
  auto counters_p1 = MergedCounters(cluster);

  // Phase 2 — flaky network on the search path: drops and delays, no
  // stage-path faults so the model stays authoritative.
  auto plan = std::make_shared<net::FaultPlan>(seed ^ 0xfau);
  plan->AddRule(net::FaultRule{.method = "in.search",
                               .drop_prob = 0.15,
                               .delay_prob = 0.25,
                               .delay_s = 0.05});
  cluster.transport().SetFaultPlan(plan);
  for (int i = 0; i < 8; ++i) {
    soak.CheckSearch(/*expect_exact=*/false);
    cluster.AdvanceTime(0.2);
  }
  cluster.transport().SetFaultPlan(nullptr);
  for (int i = 0; i < 2; ++i) soak.CheckSearch(/*expect_exact=*/true);
  auto counters_p2 = MergedCounters(cluster);
  ExpectCountersMonotone(counters_p1, counters_p2, "flaky-network phase");

  // Phase 3 — transient outage: a node goes dark and comes back before
  // anything is permanent.  Degraded searches must name only real nodes.
  size_t flaky = soak.rng().Uniform(cluster.num_index_nodes());
  cluster.KillIndexNode(flaky);
  for (int i = 0; i < 3; ++i) soak.CheckSearch(/*expect_exact=*/false);
  cluster.ReviveIndexNode(flaky);
  cluster.AdvanceTime(1.0);
  soak.CheckSearch(/*expect_exact=*/true);
  auto counters_p3 = MergedCounters(cluster);
  ExpectCountersMonotone(counters_p2, counters_p3, "transient-outage phase");

  // Phase 4 — permanent mid-workload loss: more updates land, then a
  // loaded node is wiped for good.  After the master's failure detector
  // re-homes its groups from the journal, every acknowledged record must
  // be queryable again, exactly.
  soak.RunUpdates(/*batches=*/4, /*batch_size=*/40);
  size_t victim = 0;
  for (size_t i = 0; i < cluster.num_index_nodes(); ++i) {
    if (cluster.index_node(i).NumGroups() >
        cluster.index_node(victim).NumGroups()) {
      victim = i;
    }
  }
  ASSERT_GT(cluster.index_node(victim).NumGroups(), 0u);
  NodeId victim_id = cluster.index_node(victim).id();
  cluster.KillIndexNode(victim, /*wipe=*/true);

  // Before recovery: degraded searches report exactly the lost node (it
  // is the only unreachable one and no probabilistic faults are active).
  {
    Predicate p;
    p.And("size", CmpOp::kGe, AttrValue(int64_t{1}));
    auto r = cluster.client().Search(p, "by_size");
    ASSERT_TRUE(r.ok());
    if (r->partial) {
      ASSERT_EQ(r->node_errors.size(), 1u);
      EXPECT_EQ(r->node_errors[0].node, victim_id);
    }
  }

  for (int i = 0; i < 6; ++i) cluster.AdvanceTime(1.0);  // detector fires
  ASSERT_TRUE(cluster.master().IsNodeDead(victim_id));
  ClusterStats stats = cluster.Stats();
  EXPECT_GE(stats.recoveries, 1u);
  EXPECT_GT(stats.groups_recovered, 0u);

  // Post-recovery: exact again, and the cluster keeps taking writes.
  for (int i = 0; i < 3; ++i) soak.CheckSearch(/*expect_exact=*/true);
  soak.RunUpdates(/*batches=*/3, /*batch_size=*/40);
  soak.CheckSearch(/*expect_exact=*/true);
  EXPECT_GT(soak.model_size(), 0u);

  // Observability held up through the whole soak: every recorded span tree
  // is parent-complete and cluster-wide counters only ever grew — even
  // across the wipe of a loaded node and its journal recovery.
  ExpectCountersMonotone(counters_p3, MergedCounters(cluster),
                         "node-loss/recovery phase");
  ExpectNoOrphanSpans(cluster.tracer().Spans());
  EXPECT_GT(cluster.tracer().SpanCount(), 0u);
}

TEST(ChaosSoakTest, SeededSoakSurvivesFaultsAndNodeLoss) {
  if (const char* env = std::getenv("PROPELLER_CHAOS_SEED")) {
    RunSoak(std::strtoull(env, nullptr, 10));
    return;
  }
  for (uint64_t seed : {11ull, 23ull, 47ull}) RunSoak(seed);
}

// The same soak — faults, a transient outage, a permanent wipe of a loaded
// node — at replication factor 2: every acknowledged write must survive
// (the final sweeps demand exact answers), with hedged reads and replica
// promotion active throughout.
TEST(ChaosSoakTest, ReplicatedSoakLosesNothingAtRTwo) {
  if (const char* env = std::getenv("PROPELLER_CHAOS_SEED")) {
    RunSoak(std::strtoull(env, nullptr, 10), /*replication_factor=*/2);
    return;
  }
  for (uint64_t seed : {11ull, 23ull}) RunSoak(seed, /*replication_factor=*/2);
}

}  // namespace
}  // namespace propeller::core
