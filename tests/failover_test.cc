// Master high-availability (extension): standby replication + failover.
#include <gtest/gtest.h>

#include "core/cluster.h"

namespace propeller::core {
namespace {

using index::AttrValue;
using index::CmpOp;

FileUpdate Upsert(FileId f, int64_t size) {
  FileUpdate u;
  u.file = f;
  u.attrs.Set("size", AttrValue(size));
  u.attrs.Set("path", AttrValue("/d/f"));
  return u;
}

ClusterConfig Config() {
  ClusterConfig cfg;
  cfg.index_nodes = 3;
  cfg.master.acg_policy.cluster_target = 10;
  cfg.master.metadata_flush_interval = 1'000'000;  // only explicit flushes
  return cfg;
}

TEST(FailoverTest, FailoverWithoutStandbyRefused) {
  PropellerCluster cluster(Config());
  EXPECT_EQ(cluster.FailoverToStandby().code(), StatusCode::kFailedPrecondition);
}

TEST(FailoverTest, SearchSurvivesFailover) {
  PropellerCluster cluster(Config());
  auto& client = cluster.client();
  ASSERT_TRUE(client.CreateIndex({"by_size", index::IndexType::kBTree, {"size"}})
                  .ok());
  std::vector<FileUpdate> updates;
  for (FileId f = 1; f <= 50; ++f) updates.push_back(Upsert(f, 100));
  ASSERT_TRUE(client.BatchUpdate(std::move(updates), cluster.now()).ok());

  // Standby enabled after the data exists: seeding flush captures it all.
  cluster.EnableStandbyMaster();
  ASSERT_TRUE(cluster.FailoverToStandby().ok());

  Predicate p;
  p.And("size", CmpOp::kEq, AttrValue(int64_t{100}));
  auto r = client.Search(p, "by_size");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->files.size(), 50u) << "routing lost across failover";
}

TEST(FailoverTest, UpdatesAfterFailoverRouteToExistingGroups) {
  PropellerCluster cluster(Config());
  auto& client = cluster.client();
  ASSERT_TRUE(client.CreateIndex({"by_size", index::IndexType::kBTree, {"size"}})
                  .ok());
  std::vector<FileUpdate> updates;
  for (FileId f = 1; f <= 20; ++f) updates.push_back(Upsert(f, 1));
  ASSERT_TRUE(client.BatchUpdate(std::move(updates), cluster.now()).ok());
  cluster.EnableStandbyMaster();

  uint64_t groups_before = cluster.master().NumGroups();
  ASSERT_TRUE(cluster.FailoverToStandby().ok());

  // Re-updating known files must not create fresh groups.
  std::vector<FileUpdate> again;
  for (FileId f = 1; f <= 20; ++f) again.push_back(Upsert(f, 2));
  ASSERT_TRUE(client.BatchUpdate(std::move(again), cluster.now()).ok());
  EXPECT_EQ(cluster.master().NumGroups(), groups_before);

  Predicate p;
  p.And("size", CmpOp::kEq, AttrValue(int64_t{2}));
  auto r = client.Search(p, "by_size");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->files.size(), 20u);
}

TEST(FailoverTest, MutationsSinceLastFlushAreRederived) {
  PropellerCluster cluster(Config());
  auto& client = cluster.client();
  ASSERT_TRUE(client.CreateIndex({"by_size", index::IndexType::kBTree, {"size"}})
                  .ok());
  cluster.EnableStandbyMaster();  // flush point: catalog only

  // These placements happen after the last replicated flush.
  std::vector<FileUpdate> updates;
  for (FileId f = 1; f <= 10; ++f) updates.push_back(Upsert(f, 5));
  ASSERT_TRUE(client.BatchUpdate(std::move(updates), cluster.now()).ok());

  ASSERT_TRUE(cluster.FailoverToStandby().ok());
  // The standby does not know files 1..10; new updates re-place them and
  // search still returns each file exactly once (client-side dedup plus
  // delete-on-migrate keep results consistent).
  std::vector<FileUpdate> again;
  for (FileId f = 1; f <= 10; ++f) again.push_back(Upsert(f, 6));
  ASSERT_TRUE(client.BatchUpdate(std::move(again), cluster.now()).ok());

  Predicate p;
  p.And("size", CmpOp::kGe, AttrValue(int64_t{5}));
  auto r = client.Search(p, "by_size");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->files.size(), 10u);
}

TEST(FailoverTest, CatalogSurvivesFailover) {
  PropellerCluster cluster(Config());
  auto& client = cluster.client();
  ASSERT_TRUE(client.CreateIndex({"by_size", index::IndexType::kBTree, {"size"}})
                  .ok());
  cluster.EnableStandbyMaster();
  ASSERT_TRUE(cluster.FailoverToStandby().ok());
  // The replicated catalog still rejects duplicates and serves lookups.
  auto dup = client.CreateIndex({"by_size", index::IndexType::kBTree, {"size"}});
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  ASSERT_EQ(cluster.master().Catalog().size(), 1u);
}

}  // namespace
}  // namespace propeller::core
