// Property tests: AcgManager invariants under random delta streams, and
// wire-format robustness against corrupted payloads.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "acg/acg_manager.h"
#include "common/rng.h"
#include "core/proto.h"

namespace propeller::acg {
namespace {

struct StreamParam {
  uint64_t seed;
  int deltas;
  uint64_t file_space;
  uint64_t cluster_target;
  uint64_t split_threshold;
};

class AcgManagerPropertyTest : public ::testing::TestWithParam<StreamParam> {};

// Invariants after any sequence of deltas and split passes:
//  (1) every file maps to exactly one live group;
//  (2) group membership sets partition the file set (sizes sum up);
//  (3) no group exceeds the split threshold after a split pass;
//  (4) intra+cross weight equals the total weight ever ingested.
TEST_P(AcgManagerPropertyTest, InvariantsHoldUnderRandomStreams) {
  const StreamParam p = GetParam();
  AcgPolicy policy;
  policy.cluster_target = p.cluster_target;
  policy.split_threshold = p.split_threshold;
  policy.merge_limit = p.split_threshold;
  AcgManager mgr(policy);
  Rng rng(p.seed);

  uint64_t ingested_weight = 0;
  std::set<FileId> all_files;

  for (int d = 0; d < p.deltas; ++d) {
    Acg delta;
    int edges = static_cast<int>(rng.Uniform(40)) + 1;
    for (int e = 0; e < edges; ++e) {
      FileId a = rng.Uniform(p.file_space) + 1;
      FileId b = rng.Uniform(p.file_space) + 1;
      uint64_t w = 1 + rng.Uniform(5);
      if (a == b) continue;
      delta.AddEdge(a, b, w);
      ingested_weight += w;
      all_files.insert(a);
      all_files.insert(b);
    }
    // Occasionally vertex-only files (creations).
    if (rng.Bernoulli(0.3)) {
      FileId f = rng.Uniform(p.file_space) + 1;
      delta.AddVertex(f);
      all_files.insert(f);
    }
    mgr.ApplyDelta(delta);
    if (d % 7 == 0) mgr.SplitOversizedGroups();
  }
  mgr.SplitOversizedGroups();

  // (1) + (2): group sizes partition the mapped files.
  EXPECT_EQ(mgr.NumFiles(), all_files.size());
  uint64_t sum = 0;
  for (GroupId g : mgr.Groups()) sum += mgr.GroupSize(g);
  EXPECT_EQ(sum, all_files.size());
  for (FileId f : all_files) {
    auto g = mgr.GroupOf(f);
    ASSERT_TRUE(g.has_value()) << "file " << f << " unmapped";
    EXPECT_GT(mgr.GroupSize(*g), 0u);
  }

  // (3): splits enforce the threshold (a single split halves, so allow
  // one round's slack of threshold itself).
  for (GroupId g : mgr.Groups()) {
    EXPECT_LE(mgr.GroupSize(g), p.split_threshold)
        << "group " << g << " oversized after split pass";
  }

  // (4): weight conservation.
  EXPECT_EQ(mgr.IntraGroupWeight() + mgr.CrossGroupWeight(), ingested_weight);
}

INSTANTIATE_TEST_SUITE_P(
    Streams, AcgManagerPropertyTest,
    ::testing::Values(StreamParam{1, 50, 200, 20, 60},
                      StreamParam{2, 100, 500, 50, 120},
                      StreamParam{3, 200, 100, 10, 30},
                      StreamParam{4, 30, 2000, 100, 400},
                      StreamParam{5, 150, 50, 5, 25},
                      StreamParam{6, 80, 300, 1, 40}));  // tiny fill groups

TEST(AcgManagerPropertyTest, SplitPreservesMembershipExactly) {
  AcgPolicy policy;
  policy.split_threshold = 40;
  policy.cluster_target = 1000;
  policy.merge_limit = 1000;
  AcgManager mgr(policy);
  Acg delta;
  for (FileId i = 0; i < 100; ++i) delta.AddEdge(i + 1, (i + 1) % 100 + 1, 2);
  mgr.ApplyDelta(delta);

  std::set<FileId> before;
  for (GroupId g : mgr.Groups()) {
    EXPECT_EQ(mgr.GroupSize(g), 100u);
  }
  for (FileId f = 1; f <= 100; ++f) before.insert(f);

  auto plans = mgr.SplitOversizedGroups();
  ASSERT_FALSE(plans.empty());
  std::set<FileId> after;
  for (FileId f = 1; f <= 100; ++f) {
    ASSERT_TRUE(mgr.GroupOf(f).has_value());
    after.insert(f);
  }
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace propeller::acg

namespace propeller::core {
namespace {

// Fuzz: truncations and bit flips of valid payloads must decode to an
// error (or to a *valid* alternative message), never crash.
TEST(ProtoFuzzTest, TruncationsNeverCrash) {
  StageUpdatesRequest req;
  req.group = 42;
  req.now_s = 1.5;
  for (FileId f = 1; f <= 5; ++f) {
    FileUpdate u;
    u.file = f;
    u.attrs.Set("size", index::AttrValue(int64_t{100}));
    u.attrs.Set("path", index::AttrValue("/a/b/c"));
    req.updates.push_back(std::move(u));
  }
  std::string payload = Encode(req);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    auto r = Decode<StageUpdatesRequest>(payload.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "truncation at " << cut << " decoded";
  }
}

TEST(ProtoFuzzTest, BitFlipsNeverCrash) {
  ResolveSearchResponse resp;
  resp.targets = {{10, {1, 2, 3}}, {11, {4}}};
  std::string payload = Encode(resp);
  Rng rng(9);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = payload;
    size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(rng.Next());
    auto r = Decode<ResolveSearchResponse>(mutated);
    // Either rejected or decoded into *some* structurally valid message;
    // both are fine — the requirement is no crash/UB.
    (void)r;
  }
}

TEST(ProtoFuzzTest, AcgDeltaRejectsZeroWeightEdges) {
  BinaryWriter w;
  w.PutU64(0);  // no vertices
  w.PutU64(1);  // one edge
  w.PutU64(1);
  w.PutU64(2);
  w.PutU64(0);  // weight 0: invalid
  BinaryReader r(w.data());
  acg::Acg out;
  EXPECT_FALSE(acg::Acg::Deserialize(r, out).ok());
}

}  // namespace
}  // namespace propeller::core
