// MasterNode unit tests: routing, placement, catalog, metadata flush.
// (Cross-component behaviour lives in cluster_test.cc; these exercise the
// master's RPC surface directly against stub index nodes.)
#include <gtest/gtest.h>

#include <map>

#include "core/master_node.h"

namespace propeller::core {
namespace {

// Stub Index Node: accepts everything, records calls.
class StubIndexNode : public net::RpcHandler {
 public:
  Response Handle(const std::string& method,
                  const std::string& /*payload*/) override {
    ++calls[method];
    if (method == "in.migrate_out") {
      MigrateOutResponse resp;  // nothing stored: empty migration
      return {Status::Ok(), Encode(resp), sim::Cost(0.001)};
    }
    return {Status::Ok(), {}, sim::Cost(0.0001)};
  }
  std::map<std::string, int> calls;
};

class MasterNodeTest : public ::testing::Test {
 protected:
  MasterNodeTest() : master_(1, &transport_, Config()) {
    transport_.Register(1, &master_);
    for (NodeId id = 10; id < 13; ++id) {
      transport_.Register(id, &stubs_[id - 10]);
      master_.AddIndexNode(id);
    }
  }

  static MasterConfig Config() {
    MasterConfig cfg;
    cfg.acg_policy.cluster_target = 3;
    cfg.acg_policy.merge_limit = 100;
    cfg.metadata_flush_interval = 8;
    return cfg;
  }

  net::RpcHandler::Response Call(const std::string& method,
                                 const std::string& payload) {
    auto r = transport_.Call(100, 1, method, payload);
    return {r.status, r.payload, r.cost};
  }

  net::Transport transport_;
  StubIndexNode stubs_[3];
  MasterNode master_;
};

TEST_F(MasterNodeTest, ResolveUpdatePlacesUnknownFiles) {
  ResolveUpdateRequest req;
  req.files = {1, 2, 3};
  auto resp = Call("mn.resolve_update", Encode(req));
  ASSERT_TRUE(resp.status.ok());
  auto decoded = Decode<ResolveUpdateResponse>(resp.payload);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->placements.size(), 3u);
  // cluster_target=3: all three land in the same fill group.
  EXPECT_EQ(decoded->placements[0].group, decoded->placements[1].group);
  // The group was created on exactly one node.
  int creates = 0;
  for (auto& stub : stubs_) creates += stub.calls["in.create_group"];
  EXPECT_EQ(creates, 1);

  // Resolving again returns identical placements, no new groups.
  auto resp2 = Call("mn.resolve_update", Encode(req));
  auto decoded2 = Decode<ResolveUpdateResponse>(resp2.payload);
  EXPECT_EQ(decoded2->placements[0].group, decoded->placements[0].group);
  EXPECT_EQ(decoded2->placements[0].node, decoded->placements[0].node);
}

TEST_F(MasterNodeTest, PlacementBalancesAcrossNodes) {
  // 9 files at cluster_target=3 -> 3 groups -> one per node.
  ResolveUpdateRequest req;
  for (FileId f = 1; f <= 9; ++f) req.files.push_back(f);
  ASSERT_TRUE(Call("mn.resolve_update", Encode(req)).status.ok());
  for (auto& stub : stubs_) {
    EXPECT_EQ(stub.calls["in.create_group"], 1) << "least-loaded placement";
  }
}

TEST_F(MasterNodeTest, CreateIndexBroadcastsToExistingGroups) {
  ResolveUpdateRequest files;
  files.files = {1};
  ASSERT_TRUE(Call("mn.resolve_update", Encode(files)).status.ok());

  CreateIndexRequest req;
  req.spec = {"by_size", index::IndexType::kBTree, {"size"}};
  ASSERT_TRUE(Call("mn.create_index", Encode(req)).status.ok());
  int pushes = 0;
  for (auto& stub : stubs_) pushes += stub.calls["in.create_group"];
  EXPECT_GE(pushes, 2);  // initial create + index push

  // Duplicate name rejected.
  EXPECT_EQ(Call("mn.create_index", Encode(req)).status.code(),
            StatusCode::kAlreadyExists);
  ASSERT_EQ(master_.Catalog().size(), 1u);
}

TEST_F(MasterNodeTest, ResolveSearchCoversEveryGroupExactlyOnce) {
  ResolveUpdateRequest files;
  for (FileId f = 1; f <= 9; ++f) files.files.push_back(f);
  ASSERT_TRUE(Call("mn.resolve_update", Encode(files)).status.ok());

  ResolveSearchRequest req;  // empty name: all groups
  auto resp = Call("mn.resolve_search", Encode(req));
  ASSERT_TRUE(resp.status.ok());
  auto decoded = Decode<ResolveSearchResponse>(resp.payload);
  ASSERT_TRUE(decoded.ok());
  size_t total_groups = 0;
  for (auto& t : decoded->targets) total_groups += t.groups.size();
  EXPECT_EQ(total_groups, master_.NumGroups());
  EXPECT_EQ(decoded->targets.size(), 3u);
}

TEST_F(MasterNodeTest, ResolveSearchUnknownIndexFails) {
  ResolveSearchRequest req;
  req.index_name = "missing";
  EXPECT_EQ(Call("mn.resolve_search", Encode(req)).status.code(),
            StatusCode::kNotFound);
}

TEST_F(MasterNodeTest, FlushAcgTriggersSplitOrchestration) {
  MasterConfig cfg = Config();
  cfg.acg_policy.split_threshold = 10;
  cfg.acg_policy.cluster_target = 100;
  cfg.acg_policy.merge_limit = 100;
  MasterNode master(2, &transport_, cfg);
  transport_.Register(2, &master);
  for (NodeId id = 10; id < 13; ++id) master.AddIndexNode(id);

  FlushAcgRequest req;
  for (FileId i = 0; i < 12; ++i) req.delta.AddEdge(100 + i, 100 + (i + 1) % 12);
  auto r = transport_.Call(100, 2, "mn.flush_acg", Encode(req));
  ASSERT_TRUE(r.status.ok());
  // 12 > threshold 10: a split ran -> migrate_out + install_group issued.
  int migrates = 0, installs = 0;
  for (auto& stub : stubs_) {
    migrates += stub.calls["in.migrate_out"];
    installs += stub.calls["in.install_group"];
  }
  EXPECT_EQ(migrates, 1);
  EXPECT_EQ(installs, 1);
  EXPECT_EQ(master.NumGroups(), 2u);
}

TEST_F(MasterNodeTest, MetadataFlushFiresOnInterval) {
  EXPECT_EQ(master_.FlushCount(), 0u);
  ResolveUpdateRequest req;
  for (FileId f = 1; f <= 30; ++f) req.files.push_back(f);
  ASSERT_TRUE(Call("mn.resolve_update", Encode(req)).status.ok());
  EXPECT_GE(master_.FlushCount(), 1u) << "30 mutations >> interval 8";
}

TEST_F(MasterNodeTest, SnapshotRestoreRoundTripsCatalogAndPlacement) {
  CreateIndexRequest idx;
  idx.spec = {"by_size", index::IndexType::kBTree, {"size"}};
  ASSERT_TRUE(Call("mn.create_index", Encode(idx)).status.ok());
  ResolveUpdateRequest req;
  for (FileId f = 1; f <= 6; ++f) req.files.push_back(f);
  ASSERT_TRUE(Call("mn.resolve_update", Encode(req)).status.ok());

  std::string image = master_.SnapshotMetadata();
  uint64_t groups_before = master_.NumGroups();
  auto node_of_g1 = master_.NodeOfGroup(1);

  ASSERT_TRUE(master_.RestoreMetadata(image).ok());
  EXPECT_EQ(master_.NumGroups(), groups_before);
  EXPECT_EQ(master_.NodeOfGroup(1), node_of_g1);
  ASSERT_EQ(master_.Catalog().size(), 1u);
  EXPECT_EQ(master_.Catalog()[0].name, "by_size");
  // File->group mapping restored: resolving again must not re-place.
  auto resp = Call("mn.resolve_update", Encode(req));
  auto decoded = Decode<ResolveUpdateResponse>(resp.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(master_.NumGroups(), groups_before);
}

TEST_F(MasterNodeTest, CorruptMetadataImageRejected) {
  EXPECT_FALSE(master_.RestoreMetadata("garbage").ok());
}

TEST_F(MasterNodeTest, UnknownMethodRejected) {
  EXPECT_EQ(Call("mn.nope", "").status.code(), StatusCode::kNotFound);
}

TEST_F(MasterNodeTest, HeartbeatUpdatesLoadView) {
  HeartbeatRequest hb;
  hb.node = 10;
  hb.groups = {{1, 100, 10}, {2, 50, 5}};
  EXPECT_TRUE(Call("mn.heartbeat", Encode(hb)).status.ok());
}

}  // namespace
}  // namespace propeller::core
