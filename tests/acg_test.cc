#include <gtest/gtest.h>

#include <algorithm>

#include "acg/acg.h"
#include "acg/acg_builder.h"
#include "acg/acg_manager.h"
#include "fs/vfs.h"
#include "trace/trace_gen.h"

namespace propeller::acg {
namespace {

// ---------- Acg structure ----------

TEST(AcgTest, EdgeAccumulation) {
  Acg g;
  g.AddEdge(1, 2);
  g.AddEdge(1, 2, 4);
  g.AddEdge(2, 1);  // reverse direction is a distinct directed edge
  EXPECT_EQ(g.NumVertices(), 2u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.TotalWeight(), 6u);
  EXPECT_EQ(g.EdgeWeight(1, 2), 5u);
  EXPECT_EQ(g.EdgeWeight(2, 1), 1u);
  g.AddEdge(3, 3);  // self-loop ignored
  EXPECT_EQ(g.EdgeWeight(3, 3), 0u);
}

TEST(AcgTest, MergeCombines) {
  Acg a, b;
  a.AddEdge(1, 2, 3);
  b.AddEdge(1, 2, 2);
  b.AddEdge(5, 6);
  b.AddVertex(99);
  a.Merge(b);
  EXPECT_EQ(a.EdgeWeight(1, 2), 5u);
  EXPECT_EQ(a.EdgeWeight(5, 6), 1u);
  EXPECT_EQ(a.NumVertices(), 5u);
}

TEST(AcgTest, ProjectionFoldsDirections) {
  Acg g;
  g.AddEdge(10, 20, 3);
  g.AddEdge(20, 10, 4);
  auto p = g.Project();
  EXPECT_EQ(p.graph.NumVertices(), 2u);
  EXPECT_EQ(p.graph.NumEdges(), 1u);
  EXPECT_EQ(p.graph.TotalEdgeWeight(), 7u);
  EXPECT_EQ(p.vertex_to_file[p.file_to_vertex.at(10)], 10u);
}

TEST(AcgTest, ComponentsLargestFirst) {
  Acg g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(10, 11);
  g.AddVertex(99);
  auto comps = g.Components();
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0].size(), 3u);
  EXPECT_EQ(comps[1].size(), 2u);
  EXPECT_EQ(comps[2].size(), 1u);
}

TEST(AcgTest, SerializeRoundTrip) {
  Acg g;
  g.AddEdge(1, 2, 5);
  g.AddEdge(7, 9, 1);
  g.AddVertex(42);
  BinaryWriter w;
  g.Serialize(w);
  BinaryReader r(w.data());
  Acg back;
  ASSERT_TRUE(Acg::Deserialize(r, back).ok());
  EXPECT_EQ(back.NumVertices(), 5u);
  EXPECT_EQ(back.EdgeWeight(1, 2), 5u);
  EXPECT_EQ(back.TotalWeight(), 6u);
}

// ---------- AcgBuilder: the causality rule ----------

struct Session {
  fs::Vfs vfs;
  AcgBuilder builder;
  Session() { vfs.AddListener(&builder); }
};

TEST(AcgBuilderTest, ReadThenWriteCreatesEdge) {
  Session s;
  auto in = s.vfs.Open(1, "/in", fs::OpenMode::kRead, true);
  auto out = s.vfs.Open(1, "/out", fs::OpenMode::kWrite, true);
  ASSERT_TRUE(in.ok());
  ASSERT_TRUE(out.ok());
  s.vfs.Close(out->fd);
  s.vfs.Close(in->fd);

  Acg delta = s.builder.TakeDelta();
  fs::FileId fin = s.vfs.ns().Stat("/in")->id;
  fs::FileId fout = s.vfs.ns().Stat("/out")->id;
  EXPECT_EQ(delta.EdgeWeight(fin, fout), 1u);
  EXPECT_EQ(delta.EdgeWeight(fout, fin), 0u) << "causality is directional";
}

TEST(AcgBuilderTest, WriteThenReadCreatesNoEdge) {
  Session s;
  auto out = s.vfs.Open(1, "/out", fs::OpenMode::kWrite, true);
  auto in = s.vfs.Open(1, "/in", fs::OpenMode::kRead, true);
  s.vfs.Close(in->fd);
  s.vfs.Close(out->fd);
  Acg delta = s.builder.TakeDelta();
  EXPECT_EQ(delta.TotalWeight(), 0u);
}

TEST(AcgBuilderTest, WriteAfterWriteIsCausal) {
  // fA opened for *write* at t0 also produces a later-written fB.
  Session s;
  auto o1 = s.vfs.Open(1, "/o1", fs::OpenMode::kWrite, true);
  auto o2 = s.vfs.Open(1, "/o2", fs::OpenMode::kWrite, true);
  s.vfs.Close(o1->fd);
  s.vfs.Close(o2->fd);
  Acg delta = s.builder.TakeDelta();
  fs::FileId f1 = s.vfs.ns().Stat("/o1")->id;
  fs::FileId f2 = s.vfs.ns().Stat("/o2")->id;
  EXPECT_EQ(delta.EdgeWeight(f1, f2), 1u);
  EXPECT_EQ(delta.EdgeWeight(f2, f1), 0u);
}

TEST(AcgBuilderTest, DifferentProcessesAreIndependent) {
  Session s;
  auto in = s.vfs.Open(/*pid=*/1, "/in", fs::OpenMode::kRead, true);
  auto out = s.vfs.Open(/*pid=*/2, "/out", fs::OpenMode::kWrite, true);
  s.vfs.Close(in->fd);
  s.vfs.Close(out->fd);
  Acg delta = s.builder.TakeDelta();
  EXPECT_EQ(delta.TotalWeight(), 0u) << "cross-process opens must not connect";
}

TEST(AcgBuilderTest, DeltaOnlyFlushesWhenProcessFinishes) {
  Session s;
  auto in = s.vfs.Open(1, "/in", fs::OpenMode::kRead, true);
  auto out = s.vfs.Open(1, "/out", fs::OpenMode::kWrite, true);
  s.vfs.Close(out->fd);
  // /in still open: process not finished, edge not yet flushable.
  fs::FileId fin = s.vfs.ns().Stat("/in")->id;
  fs::FileId fout = s.vfs.ns().Stat("/out")->id;
  EXPECT_EQ(s.builder.TakeDelta().EdgeWeight(fin, fout), 0u);
  EXPECT_EQ(s.builder.ActiveProcesses(), 1u);
  s.vfs.Close(in->fd);
  EXPECT_EQ(s.builder.ActiveProcesses(), 0u);
  EXPECT_EQ(s.builder.TakeDelta().EdgeWeight(fin, fout), 1u);
}

TEST(AcgBuilderTest, RepeatedExecutionsAccumulateWeight) {
  Session s;
  for (int run = 0; run < 3; ++run) {
    uint64_t pid = 100 + static_cast<uint64_t>(run);
    auto in = s.vfs.Open(pid, "/in", fs::OpenMode::kRead, run == 0);
    auto out = s.vfs.Open(pid, "/out", fs::OpenMode::kWrite, run == 0);
    s.vfs.Close(out->fd);
    s.vfs.Close(in->fd);
  }
  Acg delta = s.builder.TakeDelta();
  fs::FileId fin = s.vfs.ns().Stat("/in")->id;
  fs::FileId fout = s.vfs.ns().Stat("/out")->id;
  EXPECT_EQ(delta.EdgeWeight(fin, fout), 3u);
}

// ---------- AcgManager: placement, merge, split ----------

TEST(AcgManagerTest, ConnectedFilesShareGroup) {
  AcgManager mgr;
  Acg delta;
  delta.AddEdge(1, 2);
  delta.AddEdge(2, 3);
  delta.AddEdge(10, 11);
  auto result = mgr.ApplyDelta(delta);
  EXPECT_EQ(result.placements.size(), 5u);
  EXPECT_EQ(mgr.GroupOf(1), mgr.GroupOf(3));
  // Small components are clustered into the same fill group
  // (anti-fragmentation), so 10/11 share the group too.
  EXPECT_EQ(mgr.GroupOf(1), mgr.GroupOf(10));
  EXPECT_EQ(mgr.CrossGroupWeight(), 0u);
}

TEST(AcgManagerTest, FillGroupRotatesAtClusterTarget) {
  AcgPolicy policy;
  policy.cluster_target = 4;
  AcgManager mgr(policy);
  Acg delta;
  for (FileId f = 1; f <= 10; ++f) delta.AddVertex(f);
  mgr.ApplyDelta(delta);
  EXPECT_GE(mgr.Groups().size(), 2u) << "singletons must not all pile into one group";
  EXPECT_EQ(mgr.NumFiles(), 10u);
}

TEST(AcgManagerTest, LateEdgeMergesGroups) {
  AcgPolicy policy;
  policy.cluster_target = 2;
  AcgManager mgr(policy);
  Acg d1;
  d1.AddEdge(1, 2);
  mgr.ApplyDelta(d1);
  Acg d2;
  d2.AddEdge(10, 11);
  mgr.ApplyDelta(d2);
  // Force distinct groups (cluster_target=2 rotates the fill group).
  ASSERT_NE(mgr.GroupOf(1), mgr.GroupOf(10));

  Acg d3;
  d3.AddEdge(2, 10);  // connects the two groups
  auto result = mgr.ApplyDelta(d3);
  ASSERT_EQ(result.merges.size(), 1u);
  EXPECT_EQ(mgr.GroupOf(1), mgr.GroupOf(10));
  EXPECT_EQ(mgr.GroupSize(*mgr.GroupOf(1)), 4u);
}

TEST(AcgManagerTest, MergeRefusedBeyondLimitCountsCut) {
  AcgPolicy policy;
  policy.cluster_target = 3;
  policy.merge_limit = 4;
  AcgManager mgr(policy);
  Acg d1;
  d1.AddEdge(1, 2);
  d1.AddEdge(2, 3);
  mgr.ApplyDelta(d1);
  Acg d2;
  d2.AddEdge(10, 11);
  d2.AddEdge(11, 12);
  mgr.ApplyDelta(d2);
  ASSERT_NE(mgr.GroupOf(1), mgr.GroupOf(10));

  Acg d3;
  d3.AddEdge(3, 10, 7);  // would make a 6-file group: refused
  auto result = mgr.ApplyDelta(d3);
  EXPECT_TRUE(result.merges.empty());
  EXPECT_NE(mgr.GroupOf(1), mgr.GroupOf(10));
  EXPECT_EQ(mgr.CrossGroupWeight(), 7u);
}

TEST(AcgManagerTest, SplitsOversizedGroupBalanced) {
  AcgPolicy policy;
  policy.split_threshold = 100;
  policy.cluster_target = 1000;  // everything lands in one group
  policy.merge_limit = 1000;
  AcgManager mgr(policy);

  // Two dense clusters of 80, joined by one light edge.
  Acg delta;
  for (FileId i = 0; i < 80; ++i) {
    delta.AddEdge(1000 + i, 1000 + (i + 1) % 80, 10);
    delta.AddEdge(2000 + i, 2000 + (i + 1) % 80, 10);
  }
  delta.AddEdge(1000, 2000, 1);
  mgr.ApplyDelta(delta);
  ASSERT_EQ(mgr.Groups().size(), 1u);
  ASSERT_EQ(mgr.GroupSize(mgr.Groups()[0]), 160u);

  auto plans = mgr.SplitOversizedGroups();
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].move_out.size(), 80u);
  EXPECT_EQ(plans[0].cut_weight, 1u);
  // The two clusters must end up in different groups.
  EXPECT_NE(mgr.GroupOf(1000), mgr.GroupOf(2000));
  EXPECT_EQ(mgr.GroupOf(1000), mgr.GroupOf(1079));
  EXPECT_EQ(mgr.GroupOf(2000), mgr.GroupOf(2079));
  // No more oversized groups: a second pass is a no-op.
  EXPECT_TRUE(mgr.SplitOversizedGroups().empty());
}

TEST(AcgManagerTest, ForgetFileRemovesMapping) {
  AcgManager mgr;
  Acg delta;
  delta.AddEdge(1, 2);
  mgr.ApplyDelta(delta);
  mgr.ForgetFile(1);
  EXPECT_FALSE(mgr.GroupOf(1).has_value());
  EXPECT_TRUE(mgr.GroupOf(2).has_value());
  mgr.ForgetFile(999);  // unknown: no-op
}

// ---------- End-to-end: trace -> builder -> manager ----------

TEST(AcgEndToEndTest, ThriftTraceProducesDisconnectedComponents) {
  fs::Vfs vfs;
  AcgBuilder builder;
  vfs.AddListener(&builder);

  trace::TraceGenerator gen(trace::ThriftProfile(), /*seed=*/5);
  ASSERT_TRUE(gen.Materialize(vfs).ok());
  uint64_t pid = 1;
  ASSERT_TRUE(gen.RunExecution(vfs, &pid).ok());

  Acg acg = builder.TakeDelta();
  // Scale matches Table II's Thrift row (775 vertices) to within ~5%.
  EXPECT_NEAR(static_cast<double>(acg.NumVertices()), 775.0, 40.0);
  auto comps = acg.Components();
  // Fig. 7: the single-application ACG has >= 2 disconnected components —
  // one large (728 files in the paper) and one small (~47).
  EXPECT_GE(comps.size(), 2u);
  EXPECT_GT(comps[0].size(), 500u);
  EXPECT_GT(comps[1].size(), 20u);
}

TEST(AcgEndToEndTest, TwoApplicationsBarelyOverlap) {
  fs::Vfs vfs;
  AcgBuilder builder;
  vfs.AddListener(&builder);

  auto profiles = trace::TableOneProfiles();
  // apt-get and firefox share exactly 31 files by construction.
  trace::TraceGenerator apt(profiles[0], 1);
  trace::TraceGenerator ff(profiles[1], 2);
  ASSERT_TRUE(apt.Materialize(vfs).ok());
  ASSERT_TRUE(ff.Materialize(vfs).ok());
  uint64_t pid = 1;
  ASSERT_TRUE(apt.RunExecution(vfs, &pid).ok());
  ASSERT_TRUE(ff.RunExecution(vfs, &pid).ok());

  auto apt_paths = apt.AccessedPaths();
  auto ff_paths = ff.AccessedPaths();
  std::sort(apt_paths.begin(), apt_paths.end());
  std::sort(ff_paths.begin(), ff_paths.end());
  std::vector<std::string> common;
  std::set_intersection(apt_paths.begin(), apt_paths.end(), ff_paths.begin(),
                        ff_paths.end(), std::back_inserter(common));
  EXPECT_EQ(common.size(), 31u);
  EXPECT_EQ(apt_paths.size(), 279u);
  EXPECT_EQ(ff_paths.size(), 2279u);
}

}  // namespace
}  // namespace propeller::acg
