#include "index/index_group.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "sim/io_context.h"

namespace propeller::index {
namespace {

AttrSet FileAttrs(int64_t size, int64_t mtime, std::string path) {
  AttrSet a;
  a.Set("size", AttrValue(size));
  a.Set("mtime", AttrValue(mtime));
  a.Set("path", AttrValue(std::move(path)));
  return a;
}

FileUpdate Upsert(FileId f, int64_t size, int64_t mtime, std::string path) {
  FileUpdate u;
  u.file = f;
  u.attrs = FileAttrs(size, mtime, std::move(path));
  return u;
}

class IndexGroupTest : public ::testing::Test {
 protected:
  IndexGroupTest() : group_(1, &io_) {
    EXPECT_TRUE(group_.CreateIndex({"by_size", IndexType::kBTree, {"size"}}).ok());
    EXPECT_TRUE(group_.CreateIndex({"by_kw", IndexType::kKeyword, {"path"}}).ok());
    EXPECT_TRUE(group_
                    .CreateIndex({"by_attrs",
                                  IndexType::kKdTree,
                                  {"size", "mtime"}})
                    .ok());
  }

  sim::IoContext io_;
  IndexGroup group_;
};

TEST_F(IndexGroupTest, CreateIndexValidation) {
  EXPECT_EQ(group_.CreateIndex({"by_size", IndexType::kBTree, {"size"}}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(group_.CreateIndex({"", IndexType::kBTree, {"size"}}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(group_.CreateIndex({"bad", IndexType::kBTree, {}}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      group_.CreateIndex({"bad2", IndexType::kHash, {"a", "b"}}).code(),
      StatusCode::kInvalidArgument);
  EXPECT_TRUE(group_.HasIndex("by_size"));
  EXPECT_FALSE(group_.HasIndex("nope"));
}

TEST_F(IndexGroupTest, StagedUpdatesInvisibleUntilCommitButSearchCommits) {
  group_.StageUpdate(Upsert(1, 100, 10, "/a/b.txt"));
  EXPECT_EQ(group_.PendingUpdates(), 1u);
  EXPECT_EQ(group_.NumFiles(), 0u);  // not yet applied

  // Search triggers the commit (strong consistency).
  Predicate p;
  p.And("size", CmpOp::kGt, AttrValue(int64_t{50}));
  auto r = group_.Search(p);
  EXPECT_EQ(r.files, (std::vector<FileId>{1}));
  EXPECT_EQ(group_.PendingUpdates(), 0u);
  EXPECT_EQ(group_.NumFiles(), 1u);
}

TEST_F(IndexGroupTest, UpdateReplacesOldPostings) {
  group_.StageUpdate(Upsert(1, 100, 10, "/a/b.txt"));
  group_.Commit();
  group_.StageUpdate(Upsert(1, 5, 10, "/a/b.txt"));  // shrink the file
  group_.Commit();

  Predicate big;
  big.And("size", CmpOp::kGt, AttrValue(int64_t{50}));
  EXPECT_TRUE(group_.Search(big).files.empty()) << "stale posting survived";
  Predicate small;
  small.And("size", CmpOp::kLe, AttrValue(int64_t{5}));
  EXPECT_EQ(group_.Search(small).files, (std::vector<FileId>{1}));
}

TEST_F(IndexGroupTest, DeleteRemovesEverywhere) {
  group_.StageUpdate(Upsert(1, 100, 10, "/x/firefox/a"));
  group_.StageUpdate(Upsert(2, 200, 20, "/x/firefox/b"));
  group_.Commit();

  FileUpdate del;
  del.file = 1;
  del.is_delete = true;
  group_.StageUpdate(std::move(del));

  Predicate kw;
  kw.And("path", CmpOp::kContainsWord, AttrValue("firefox"));
  EXPECT_EQ(group_.Search(kw).files, (std::vector<FileId>{2}));
  EXPECT_EQ(group_.NumFiles(), 1u);
}

TEST_F(IndexGroupTest, ConjunctionVerifiesResidualTerms) {
  group_.StageUpdate(Upsert(1, 100, 10, "/a/firefox/x"));
  group_.StageUpdate(Upsert(2, 100, 99, "/a/firefox/y"));
  group_.StageUpdate(Upsert(3, 100, 10, "/a/chrome/z"));
  group_.Commit();

  Predicate p;
  p.And("path", CmpOp::kContainsWord, AttrValue("firefox"))
      .And("mtime", CmpOp::kLt, AttrValue(int64_t{50}));
  auto r = group_.Search(p);
  EXPECT_EQ(r.files, (std::vector<FileId>{1}));
  EXPECT_EQ(r.access_path, "keyword:by_kw");
}

TEST_F(IndexGroupTest, KdTreeServesTwoDimensionalRange) {
  IndexGroup g(2, &io_);
  ASSERT_TRUE(
      g.CreateIndex({"kd", IndexType::kKdTree, {"size", "mtime"}}).ok());
  for (FileId f = 1; f <= 50; ++f) {
    g.StageUpdate(Upsert(f, static_cast<int64_t>(f), static_cast<int64_t>(100 - f),
                         "/d/f"));
  }
  Predicate p;
  p.And("size", CmpOp::kGt, AttrValue(int64_t{10}))
      .And("size", CmpOp::kLe, AttrValue(int64_t{20}))
      .And("mtime", CmpOp::kGe, AttrValue(int64_t{85}));
  auto r = g.Search(p);
  // size in (10, 20], mtime = 100 - size >= 85  =>  size in (10, 15]
  std::sort(r.files.begin(), r.files.end());
  EXPECT_EQ(r.files, (std::vector<FileId>{11, 12, 13, 14, 15}));
  EXPECT_EQ(r.access_path, "kdtree:kd");
}

TEST_F(IndexGroupTest, FullScanFallbackWhenNoIndexApplies) {
  IndexGroup g(3, &io_);  // no indices at all
  g.StageUpdate(Upsert(1, 100, 10, "/a"));
  g.StageUpdate(Upsert(2, 10, 10, "/b"));
  Predicate p;
  p.And("size", CmpOp::kGt, AttrValue(int64_t{50}));
  auto r = g.Search(p);
  EXPECT_EQ(r.files, (std::vector<FileId>{1}));
  EXPECT_EQ(r.access_path, "scan");
}

TEST_F(IndexGroupTest, WalRecoveryRestoresPendingUpdates) {
  group_.StageUpdate(Upsert(1, 100, 10, "/a"));
  group_.StageUpdate(Upsert(2, 200, 20, "/b"));

  // Crash: memory state lost; WAL survives.
  group_.SimulateCrashLosingMemoryState();
  EXPECT_EQ(group_.PendingUpdates(), 0u);
  ASSERT_TRUE(group_.RecoverPendingFromWal().ok());
  EXPECT_EQ(group_.PendingUpdates(), 2u);

  Predicate p;
  p.And("size", CmpOp::kGe, AttrValue(int64_t{100}));
  auto r = group_.Search(p);
  std::sort(r.files.begin(), r.files.end());
  EXPECT_EQ(r.files, (std::vector<FileId>{1, 2}));
}

TEST_F(IndexGroupTest, CommittedUpdatesNotReplayedAfterRecovery) {
  group_.StageUpdate(Upsert(1, 100, 10, "/a"));
  group_.Commit();  // truncates WAL
  group_.StageUpdate(Upsert(2, 200, 20, "/b"));
  group_.SimulateCrashLosingMemoryState();
  ASSERT_TRUE(group_.RecoverPendingFromWal().ok());
  EXPECT_EQ(group_.PendingUpdates(), 1u);  // only the uncommitted one
  group_.Commit();
  EXPECT_EQ(group_.NumFiles(), 2u);
}

// The oldest-pending stamp drives the commit-timeout tick on IndexNode.
// It used to live outside the group as a bare atomic (racy blind stores);
// these tests pin down its semantics now that it is guarded by the group
// mutex and maintained by StageUpdate/Commit themselves.
TEST_F(IndexGroupTest, OldestPendingStampSetByFirstStagedUpdate) {
  EXPECT_LT(group_.OldestPendingStagedAt(), 0.0) << "no pending -> no stamp";
  group_.StageUpdate(Upsert(1, 100, 10, "/a"), /*staged_at_s=*/5.0);
  EXPECT_DOUBLE_EQ(group_.OldestPendingStagedAt(), 5.0);
  // Later updates do not advance the stamp: the timeout is measured from
  // the OLDEST uncommitted update.
  group_.StageUpdate(Upsert(2, 200, 20, "/b"), /*staged_at_s=*/9.0);
  EXPECT_DOUBLE_EQ(group_.OldestPendingStagedAt(), 5.0);
}

TEST_F(IndexGroupTest, OldestPendingStampClearedByCommitAndSearch) {
  group_.StageUpdate(Upsert(1, 100, 10, "/a"), /*staged_at_s=*/5.0);
  group_.Commit();
  EXPECT_LT(group_.OldestPendingStagedAt(), 0.0);
  // Search commits pending updates (search-sees-latest), so it clears the
  // stamp too.
  group_.StageUpdate(Upsert(2, 200, 20, "/b"), /*staged_at_s=*/7.0);
  Predicate pred;
  pred.And("size", CmpOp::kGt, AttrValue(int64_t{0}));
  group_.Search(pred);
  EXPECT_LT(group_.OldestPendingStagedAt(), 0.0);
  // And the next staged update re-stamps from scratch.
  group_.StageUpdate(Upsert(3, 300, 30, "/c"), /*staged_at_s=*/11.0);
  EXPECT_DOUBLE_EQ(group_.OldestPendingStagedAt(), 11.0);
}

TEST_F(IndexGroupTest, UnstampedStagingLeavesStampAlone) {
  // WAL replay and migration install stage without a timestamp; they must
  // not fabricate a commit-timeout epoch.
  group_.StageUpdate(Upsert(1, 100, 10, "/a"));
  EXPECT_LT(group_.OldestPendingStagedAt(), 0.0);
  group_.StageUpdate(Upsert(2, 200, 20, "/b"), /*staged_at_s=*/4.0);
  EXPECT_DOUBLE_EQ(group_.OldestPendingStagedAt(), 4.0);
}

TEST_F(IndexGroupTest, OldestPendingStampSurvivesCrashRecovery) {
  group_.StageUpdate(Upsert(1, 100, 10, "/a"), /*staged_at_s=*/5.0);
  group_.SimulateCrashLosingMemoryState();
  // The stamp survives the simulated crash: recovered pending updates are
  // at least as old as the pre-crash epoch, so keeping it makes the
  // commit timeout fire no later than it should.
  ASSERT_TRUE(group_.RecoverPendingFromWal().ok());
  EXPECT_DOUBLE_EQ(group_.OldestPendingStagedAt(), 5.0);
  group_.Commit();
  EXPECT_LT(group_.OldestPendingStagedAt(), 0.0);
}

TEST_F(IndexGroupTest, RecoveryWithEmptyWalClearsStaleStamp) {
  group_.StageUpdate(Upsert(1, 100, 10, "/a"), /*staged_at_s=*/5.0);
  group_.Commit();  // WAL now contains only committed (skippable) records
  group_.StageUpdate(Upsert(2, 200, 20, "/b"), /*staged_at_s=*/8.0);
  group_.Commit();
  group_.SimulateCrashLosingMemoryState();
  ASSERT_TRUE(group_.RecoverPendingFromWal().ok());
  // Nothing pending after replay -> no stamp, so the tick path never sees
  // a phantom timeout for an empty pending queue.
  EXPECT_LT(group_.OldestPendingStagedAt(), 0.0);
}

TEST_F(IndexGroupTest, StagingIsCheaperThanCommitting) {
  // The entire point of the index cache: the critical-path cost (WAL
  // append) is orders of magnitude below the structure-update cost.
  io_.DropCaches();
  sim::Cost stage = group_.StageUpdate(Upsert(1, 100, 10, "/a/b/c"));
  io_.DropCaches();
  sim::Cost commit = group_.Commit();
  EXPECT_GT(commit.seconds(), stage.seconds() * 10);
}

TEST_F(IndexGroupTest, FileUpdateSerializationRoundTrip) {
  FileUpdate u = Upsert(42, 1, 2, "/x/y");
  u.is_delete = true;
  BinaryWriter w;
  u.Serialize(w);
  BinaryReader r(w.data());
  FileUpdate back;
  ASSERT_TRUE(FileUpdate::Deserialize(r, back).ok());
  EXPECT_EQ(back.file, 42u);
  EXPECT_TRUE(back.is_delete);
  EXPECT_EQ(back.attrs.Find("path")->as_string(), "/x/y");
}

TEST_F(IndexGroupTest, IndexSpecSerializationRoundTrip) {
  IndexSpec s{"kd", IndexType::kKdTree, {"size", "mtime", "uid"}};
  BinaryWriter w;
  s.Serialize(w);
  BinaryReader r(w.data());
  IndexSpec back;
  ASSERT_TRUE(IndexSpec::Deserialize(r, back).ok());
  EXPECT_EQ(back.name, "kd");
  EXPECT_EQ(back.type, IndexType::kKdTree);
  EXPECT_EQ(back.attrs.size(), 3u);
}

TEST_F(IndexGroupTest, ExtractKeywordsTokenizes) {
  auto words = ExtractKeywords("/usr/lib/firefox-3.6/libxul.so");
  EXPECT_NE(std::find(words.begin(), words.end(), "firefox"), words.end());
  EXPECT_NE(std::find(words.begin(), words.end(), "libxul"), words.end());
  EXPECT_NE(std::find(words.begin(), words.end(), "so"), words.end());
  EXPECT_TRUE(ExtractKeywords("///...").empty());
}

// Randomized consistency: interleave stage/commit/search and compare with a
// brute-force model.
TEST(IndexGroupFuzzTest, SearchAlwaysMatchesModel) {
  sim::IoContext io;
  IndexGroup g(9, &io);
  ASSERT_TRUE(g.CreateIndex({"by_size", IndexType::kBTree, {"size"}}).ok());
  Rng rng(321);
  std::map<FileId, int64_t> model;  // file -> size

  for (int step = 0; step < 300; ++step) {
    auto f = static_cast<FileId>(rng.Uniform(40));
    if (rng.Bernoulli(0.2) && model.count(f) != 0u) {
      FileUpdate del;
      del.file = f;
      del.is_delete = true;
      g.StageUpdate(std::move(del));
      model.erase(f);
    } else {
      auto size = rng.UniformInt(0, 1000);
      g.StageUpdate(Upsert(f, size, 0, "/f"));
      model[f] = size;
    }

    if (step % 7 == 0) {
      int64_t threshold = rng.UniformInt(0, 1000);
      Predicate p;
      p.And("size", CmpOp::kGt, AttrValue(threshold));
      auto r = g.Search(p);
      std::vector<FileId> expect;
      for (auto [file, size] : model) {
        if (size > threshold) expect.push_back(file);
      }
      std::sort(r.files.begin(), r.files.end());
      ASSERT_EQ(r.files, expect) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace propeller::index
