// Multiple clients sharing one cluster: the paper's Fig. 6 shows clients
// processing file-indexing and file-search requests from different
// applications simultaneously with no cross-ACG transactions.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cluster.h"
#include "fs/vfs.h"

namespace propeller::core {
namespace {

using index::AttrValue;
using index::CmpOp;

FileUpdate Upsert(FileId f, int64_t size, std::string path) {
  FileUpdate u;
  u.file = f;
  u.attrs.Set("size", AttrValue(size));
  u.attrs.Set("path", AttrValue(std::move(path)));
  return u;
}

ClusterConfig Config() {
  ClusterConfig cfg;
  cfg.index_nodes = 4;
  cfg.master.acg_policy.cluster_target = 100;
  cfg.master.acg_policy.merge_limit = 1000;
  return cfg;
}

TEST(MultiClientTest, InterleavedUpdatesFromTwoClientsAllVisible) {
  PropellerCluster cluster(Config());
  auto& alice = cluster.client();
  auto& bob = cluster.AddClient();
  ASSERT_TRUE(
      alice.CreateIndex({"by_size", index::IndexType::kBTree, {"size"}}).ok());

  for (int round = 0; round < 10; ++round) {
    std::vector<FileUpdate> a, b;
    for (FileId f = 0; f < 10; ++f) {
      a.push_back(Upsert(1000 + round * 10 + f, 1, "/alice/f"));
      b.push_back(Upsert(2000 + round * 10 + f, 2, "/bob/f"));
    }
    ASSERT_TRUE(alice.BatchUpdate(std::move(a), cluster.now()).ok());
    ASSERT_TRUE(bob.BatchUpdate(std::move(b), cluster.now()).ok());
  }

  Predicate pa;
  pa.And("size", CmpOp::kEq, AttrValue(int64_t{1}));
  auto ra = bob.Search(pa, "by_size");  // bob sees alice's files
  ASSERT_TRUE(ra.ok());
  EXPECT_EQ(ra->files.size(), 100u);

  Predicate pb;
  pb.And("size", CmpOp::kEq, AttrValue(int64_t{2}));
  auto rb = alice.Search(pb, "by_size");
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(rb->files.size(), 100u);
}

TEST(MultiClientTest, ClientsOnSharedStorageCaptureDisjointApps) {
  // Both client machines mount the SAME shared storage (Fig. 5): file ids
  // are global, and each client's File Access Management captures whatever
  // processes run through its mount.
  PropellerCluster cluster(Config());
  auto& alice = cluster.client();
  auto& bob = cluster.AddClient();

  fs::Vfs shared;
  alice.AttachVfs(&shared);

  auto run_app = [](fs::Vfs& vfs, uint64_t pid, const std::string& root) {
    auto in = vfs.Open(pid, root + "/in", fs::OpenMode::kRead, true);
    auto out = vfs.Open(pid, root + "/out", fs::OpenMode::kWrite, true);
    ASSERT_TRUE(in.ok());
    ASSERT_TRUE(out.ok());
    (void)vfs.Close(out->fd);
    (void)vfs.Close(in->fd);
  };
  run_app(shared, 1, "/alice");
  ASSERT_TRUE(alice.FlushAcg().ok());
  // Bob's mount observes a different application later.
  bob.builder();  // bob exists but captured nothing yet
  run_app(shared, 2, "/bob");
  ASSERT_TRUE(alice.FlushAcg().ok());

  const auto& mgr = cluster.master().acg_manager();
  fs::FileId a_in = shared.ns().Stat("/alice/in")->id;
  fs::FileId a_out = shared.ns().Stat("/alice/out")->id;
  fs::FileId b_in = shared.ns().Stat("/bob/in")->id;
  fs::FileId b_out = shared.ns().Stat("/bob/out")->id;
  EXPECT_EQ(mgr.GroupOf(a_in), mgr.GroupOf(a_out));
  EXPECT_EQ(mgr.GroupOf(b_in), mgr.GroupOf(b_out));
  EXPECT_EQ(mgr.NumFiles(), 4u);
}

TEST(MultiClientTest, SearchWhileOtherClientStagesStaysConsistent) {
  PropellerCluster cluster(Config());
  auto& writer = cluster.client();
  auto& reader = cluster.AddClient();
  ASSERT_TRUE(
      writer.CreateIndex({"by_size", index::IndexType::kBTree, {"size"}}).ok());

  size_t expected = 0;
  for (int round = 0; round < 20; ++round) {
    std::vector<FileUpdate> batch;
    for (FileId f = 0; f < 5; ++f) {
      batch.push_back(Upsert(static_cast<FileId>(round) * 5 + f + 1, 7, "/w/f"));
    }
    expected += batch.size();
    ASSERT_TRUE(writer.BatchUpdate(std::move(batch), cluster.now()).ok());

    Predicate p;
    p.And("size", CmpOp::kEq, AttrValue(int64_t{7}));
    auto r = reader.Search(p, "by_size");
    ASSERT_TRUE(r.ok());
    // Strong consistency: every already-acknowledged update is visible.
    EXPECT_EQ(r->files.size(), expected) << "round " << round;
  }
}

}  // namespace
}  // namespace propeller::core
