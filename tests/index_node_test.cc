// IndexNode unit tests: the RPC surface exercised directly.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/index_node.h"

namespace propeller::core {
namespace {

using index::AttrValue;
using index::CmpOp;

FileUpdate Upsert(FileId f, int64_t size) {
  FileUpdate u;
  u.file = f;
  u.attrs.Set("size", AttrValue(size));
  return u;
}

class IndexNodeTest : public ::testing::Test {
 protected:
  IndexNodeTest() : node_(10) {}

  net::RpcHandler::Response Call(const std::string& method,
                                 const std::string& payload) {
    return node_.Handle(method, payload);
  }

  void CreateGroup(GroupId g) {
    CreateGroupRequest req;
    req.group = g;
    req.specs = {{"by_size", index::IndexType::kBTree, {"size"}}};
    ASSERT_TRUE(Call("in.create_group", Encode(req)).status.ok());
  }

  void Stage(GroupId g, std::vector<FileUpdate> updates, double now = 0) {
    StageUpdatesRequest req;
    req.group = g;
    req.now_s = now;
    req.updates = std::move(updates);
    ASSERT_TRUE(Call("in.stage_updates", Encode(req)).status.ok());
  }

  std::vector<FileId> Search(std::vector<GroupId> groups, int64_t min_size) {
    SearchRequest req;
    req.groups = std::move(groups);
    req.predicate.And("size", CmpOp::kGt, AttrValue(min_size));
    auto resp = Call("in.search", Encode(req));
    EXPECT_TRUE(resp.status.ok());
    auto decoded = Decode<SearchResponse>(resp.payload);
    EXPECT_TRUE(decoded.ok());
    std::sort(decoded->files.begin(), decoded->files.end());
    return decoded->files;
  }

  IndexNode node_;
};

TEST_F(IndexNodeTest, CreateGroupIsIdempotentForSpecs) {
  CreateGroup(5);
  CreateGroup(5);  // re-sending the same specs is fine
  EXPECT_EQ(node_.NumGroups(), 1u);
  EXPECT_TRUE(node_.FindGroup(5)->HasIndex("by_size"));
}

TEST_F(IndexNodeTest, StageToUnknownGroupFails) {
  StageUpdatesRequest req;
  req.group = 99;
  req.updates.push_back(Upsert(1, 10));
  EXPECT_EQ(Call("in.stage_updates", Encode(req)).status.code(),
            StatusCode::kNotFound);
}

TEST_F(IndexNodeTest, SearchCommitsStagedUpdates) {
  CreateGroup(1);
  Stage(1, {Upsert(1, 100), Upsert(2, 5)});
  EXPECT_EQ(Search({1}, 50), (std::vector<FileId>{1}));
  EXPECT_EQ(node_.FindGroup(1)->PendingUpdates(), 0u);
}

TEST_F(IndexNodeTest, SearchSkipsUnknownGroupsGracefully) {
  CreateGroup(1);
  Stage(1, {Upsert(1, 100)});
  // Group 2 migrated away / never existed: the search still answers from
  // group 1 (stale routing tolerance).
  EXPECT_EQ(Search({1, 2}, 50), (std::vector<FileId>{1}));
}

TEST_F(IndexNodeTest, TickCommitsOnlyAfterTimeout) {
  CreateGroup(1);
  Stage(1, {Upsert(1, 100)}, /*now=*/10.0);

  TickRequest early;
  early.now_s = 12.0;  // only 2s elapsed < 5s timeout
  ASSERT_TRUE(Call("in.tick", Encode(early)).status.ok());
  EXPECT_EQ(node_.FindGroup(1)->PendingUpdates(), 1u);

  TickRequest late;
  late.now_s = 15.5;
  ASSERT_TRUE(Call("in.tick", Encode(late)).status.ok());
  EXPECT_EQ(node_.FindGroup(1)->PendingUpdates(), 0u);
  EXPECT_EQ(node_.FindGroup(1)->NumFiles(), 1u);
}

// Regression: the oldest-pending stamp used to be a bare atomic on the
// node's group table, cleared with a blind store after search/tick.  A
// stage landing between a search's commit and that store lost its timeout
// epoch, so its updates could sit past the commit timeout.  The stamp now
// lives under the group mutex and Commit clears it, so a stage that lands
// after the search re-stamps correctly.
TEST_F(IndexNodeTest, StageAfterSearchKeepsItsOwnTimeoutEpoch) {
  CreateGroup(1);
  Stage(1, {Upsert(1, 100)}, /*now=*/10.0);
  EXPECT_EQ(Search({1}, 50), (std::vector<FileId>{1}));  // commits, clears stamp

  Stage(1, {Upsert(2, 200)}, /*now=*/20.0);
  EXPECT_DOUBLE_EQ(node_.FindGroup(1)->OldestPendingStagedAt(), 20.0);

  // A tick measured from the new epoch (not the cleared one) commits only
  // once 20.0 + timeout has passed.
  TickRequest early;
  early.now_s = 24.0;
  ASSERT_TRUE(Call("in.tick", Encode(early)).status.ok());
  EXPECT_EQ(node_.FindGroup(1)->PendingUpdates(), 1u);
  TickRequest late;
  late.now_s = 25.5;
  ASSERT_TRUE(Call("in.tick", Encode(late)).status.ok());
  EXPECT_EQ(node_.FindGroup(1)->PendingUpdates(), 0u);
  EXPECT_EQ(node_.FindGroup(1)->NumFiles(), 2u);
}

TEST_F(IndexNodeTest, TickAfterCrashRecoveryStillCommitsPending) {
  CreateGroup(1);
  Stage(1, {Upsert(1, 100)}, /*now=*/10.0);
  auto* group = node_.FindGroup(1);
  group->SimulateCrashLosingMemoryState();
  ASSERT_TRUE(group->RecoverPendingFromWal().ok());
  // The pre-crash epoch survives recovery, so the timeout fires on
  // schedule instead of never (or immediately).
  EXPECT_DOUBLE_EQ(group->OldestPendingStagedAt(), 10.0);
  TickRequest late;
  late.now_s = 15.5;
  ASSERT_TRUE(Call("in.tick", Encode(late)).status.ok());
  EXPECT_EQ(node_.FindGroup(1)->PendingUpdates(), 0u);
  EXPECT_EQ(node_.FindGroup(1)->NumFiles(), 1u);
}

TEST_F(IndexNodeTest, MigrateOutMovesSelectedFiles) {
  CreateGroup(1);
  Stage(1, {Upsert(1, 10), Upsert(2, 20), Upsert(3, 30)});

  MigrateOutRequest req;
  req.group = 1;
  req.files = {1, 3};
  auto resp = Call("in.migrate_out", Encode(req));
  ASSERT_TRUE(resp.status.ok());
  auto decoded = Decode<MigrateOutResponse>(resp.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->records.size(), 2u);

  // Only file 2 remains locally.
  EXPECT_EQ(node_.FindGroup(1)->NumFiles(), 1u);
  EXPECT_EQ(Search({1}, 0), (std::vector<FileId>{2}));
}

TEST_F(IndexNodeTest, MigrateAllAndDropGroup) {
  CreateGroup(1);
  Stage(1, {Upsert(1, 10), Upsert(2, 20)});
  MigrateOutRequest req;
  req.group = 1;
  req.drop_group = true;  // empty files list = take everything
  auto resp = Call("in.migrate_out", Encode(req));
  ASSERT_TRUE(resp.status.ok());
  auto decoded = Decode<MigrateOutResponse>(resp.payload);
  EXPECT_EQ(decoded->records.size(), 2u);
  EXPECT_EQ(node_.NumGroups(), 0u);
}

TEST_F(IndexNodeTest, InstallGroupMakesRecordsSearchable) {
  InstallGroupRequest req;
  req.group = 9;
  req.specs = {{"by_size", index::IndexType::kBTree, {"size"}}};
  req.records = {Upsert(7, 700), Upsert(8, 800)};
  ASSERT_TRUE(Call("in.install_group", Encode(req)).status.ok());
  EXPECT_EQ(Search({9}, 750), (std::vector<FileId>{8}));
}

TEST_F(IndexNodeTest, GroupStatsReflectCommittedState) {
  CreateGroup(1);
  CreateGroup(2);
  Stage(1, {Upsert(1, 10), Upsert(2, 20)});
  TickRequest tick;
  tick.now_s = 100;
  ASSERT_TRUE(Call("in.tick", Encode(tick)).status.ok());

  auto stats = node_.GroupStats();
  ASSERT_EQ(stats.size(), 2u);
  uint64_t total_files = 0;
  for (auto& s : stats) total_files += s.files;
  EXPECT_EQ(total_files, 2u);
  EXPECT_GT(node_.TotalPages(), 0u);
}

TEST_F(IndexNodeTest, SearchMakespanUsesWorkerPool) {
  // Many groups, searched in one request: the node-side cost must be far
  // below the serial sum because 16 workers run in parallel.
  IndexNodeConfig serial_cfg;
  serial_cfg.search_threads = 1;
  IndexNode serial(11, serial_cfg);
  IndexNodeConfig pooled_cfg;
  pooled_cfg.search_threads = 16;
  IndexNode pooled(12, pooled_cfg);

  for (IndexNode* node : {&serial, &pooled}) {
    for (GroupId g = 1; g <= 32; ++g) {
      CreateGroupRequest creq;
      creq.group = g;
      creq.specs = {{"by_size", index::IndexType::kBTree, {"size"}}};
      ASSERT_TRUE(node->Handle("in.create_group", Encode(creq)).status.ok());
      StageUpdatesRequest sreq;
      sreq.group = g;
      for (FileId f = 0; f < 50; ++f) {
        sreq.updates.push_back(Upsert(g * 1000 + f, static_cast<int64_t>(f)));
      }
      ASSERT_TRUE(node->Handle("in.stage_updates", Encode(sreq)).status.ok());
    }
  }
  SearchRequest req;
  for (GroupId g = 1; g <= 32; ++g) req.groups.push_back(g);
  req.predicate.And("size", CmpOp::kGt, AttrValue(int64_t{-1}));
  auto serial_resp = serial.Handle("in.search", Encode(req));
  auto pooled_resp = pooled.Handle("in.search", Encode(req));
  ASSERT_TRUE(serial_resp.status.ok());
  ASSERT_TRUE(pooled_resp.status.ok());
  EXPECT_GT(serial_resp.cost.seconds(), pooled_resp.cost.seconds() * 4);
}

TEST_F(IndexNodeTest, MalformedPayloadRejected) {
  EXPECT_FALSE(Call("in.stage_updates", "junk").status.ok());
  EXPECT_FALSE(Call("in.search", "junk").status.ok());
  EXPECT_EQ(Call("in.bogus", "").status.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace propeller::core
