// Coverage for the common utility layer: thread pool, formatting, table
// rendering, RNG distributions, status plumbing.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/fmt.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"

namespace propeller {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::Ok().ok());
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
  EXPECT_EQ(Status::Corruption().ToString(), "CORRUPTION");
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"))
      << "equality compares codes only";
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(ok.status().ok());

  Result<int> bad(Status::Internal("boom"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInternal);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_EQ(ok.value_or(-1), 42);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 7);
}

// ---------- Formatting ----------

TEST(FmtTest, SprintfAndStrCat) {
  EXPECT_EQ(Sprintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(Sprintf("%s", std::string(300, 'a').c_str()).size(), 300u);
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(HumanCount(1'500'000), "1.50M");
  EXPECT_EQ(HumanCount(2'000), "2.00K");
  EXPECT_EQ(HumanCount(3'000'000'000.0), "3.00G");
  EXPECT_EQ(HumanCount(12), "12");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "long header"});
  t.AddRow({"xxxxxx", "1"});
  t.AddRow({"y"});  // short rows pad with empties
  std::string out = t.ToString();
  // Three lines of equal width: header, separator, 2 rows.
  size_t first_nl = out.find('\n');
  std::string header = out.substr(0, first_nl);
  EXPECT_NE(header.find("long header"), std::string::npos);
  size_t width = first_nl;
  size_t pos = 0;
  int lines = 0;
  while (pos < out.size()) {
    size_t nl = out.find('\n', pos);
    EXPECT_EQ(nl - pos, width) << "ragged table line " << lines;
    pos = nl + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 4);
}

// ---------- ThreadPool ----------

TEST(ThreadPoolTest, ExecutesAllSubmittedWork) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ReturnsValuesThroughFutures) {
  ThreadPool pool(2);
  auto f1 = pool.Submit([] { return 21 * 2; });
  auto f2 = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ActuallyRunsConcurrently) {
  ThreadPool pool(4);
  std::set<std::thread::id> ids;
  std::mutex mu;
  std::atomic<int> ready{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(pool.Submit([&] {
      ++ready;
      while (ready.load() < 4) std::this_thread::yield();
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ids.size(), 4u) << "tasks must run on distinct workers";
}

TEST(ThreadPoolTest, SubmitBatchRunsIndexedTasksInOrder) {
  ThreadPool pool(3);
  auto futures = pool.SubmitBatch(16, [](size_t i) { return i * i; });
  ASSERT_EQ(futures.size(), 16u);
  std::vector<size_t> results = ThreadPool::WaitAll(futures);
  ASSERT_EQ(results.size(), 16u);
  for (size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ThreadPoolTest, WaitAllOnVoidFutures) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto futures = pool.SubmitBatch(25, [&](size_t) { ++counter; });
  ThreadPool::WaitAll(futures);
  EXPECT_EQ(counter.load(), 25);
}

TEST(ThreadPoolTest, WaitAllPropagatesTaskExceptions) {
  ThreadPool pool(2);
  auto futures = pool.SubmitBatch(8, [](size_t i) -> int {
    if (i == 5) throw std::runtime_error("task 5 failed");
    return static_cast<int>(i);
  });
  EXPECT_THROW(ThreadPool::WaitAll(futures), std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionDoesNotPoisonWorkers) {
  ThreadPool pool(1);
  auto bad = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker survives and keeps executing queued work.
  auto good = pool.Submit([] { return 7; });
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPoolTest, CleanShutdownWithQueuedWorkAndExceptions) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran, i]() {
        ++ran;
        if (i % 7 == 0) throw std::runtime_error("sporadic");
      });
    }
  }  // destructor must drain the queue and join without touching the
     // unconsumed exceptional futures
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(counter.load(), 50);
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformBoundsRespected) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.Uniform(7), 7u);
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(7);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<uint64_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 30u);
  for (uint64_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ZipfIsHeadHeavy) {
  Rng rng(9);
  int head = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (rng.Zipf(1000, 0.8) < 100) ++head;  // top 10% of ranks
  }
  EXPECT_GT(head, 5'000) << "zipf(0.8) should concentrate on the head";
}

// ---------- Stopwatch / logging ----------

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.ElapsedSeconds(), 0.009);
  sw.Reset();
  EXPECT_LT(sw.ElapsedSeconds(), 0.009);
}

TEST(LoggingTest, LevelGate) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  PLOG(INFO) << "suppressed";  // must not crash; gated out
  PLOG(ERROR) << "common_test: expected error-level line";
  SetLogLevel(old);
}

}  // namespace
}  // namespace propeller
