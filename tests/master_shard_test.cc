// Sharded master & placement leases (DESIGN.md "Sharded master & leases"):
// per-shard epoch isolation, lease grant / renewal / expiry / revocation,
// delegated resolves answering bit-equal to the master, the shards=1
// off-mode staying bit-identical, and concurrent resolves staying clean
// under TSan (the `master` ctest label / tsan-master preset).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "core/cluster.h"
#include "core/master_node.h"

namespace propeller::core {
namespace {

using index::AttrValue;
using index::CmpOp;

FileUpdate Upsert(FileId f, int64_t size) {
  FileUpdate u;
  u.file = f;
  u.attrs.Set("size", AttrValue(size));
  return u;
}

IndexSpec SizeIndex() { return {"by_size", index::IndexType::kBTree, {"size"}}; }

// First `count` file ids whose metadata lives on `shard` (of `n`).
std::vector<FileId> FilesOfShard(uint32_t shard, uint32_t n, size_t count) {
  std::vector<FileId> out;
  for (FileId f = 1; out.size() < count; ++f) {
    if (ShardOfFile(f, n) == shard) out.push_back(f);
  }
  return out;
}

uint64_t Counter(const PropellerCluster& cluster, const std::string& name) {
  auto counters = cluster.Stats().metrics.counters;
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

// --- direct master tests (stub index nodes) ------------------------------

class StubIndexNode : public net::RpcHandler {
 public:
  Response Handle(const std::string& method,
                  const std::string& /*payload*/) override {
    ++calls[method];
    if (method == "in.migrate_out") {
      MigrateOutResponse resp;
      return {Status::Ok(), Encode(resp), sim::Cost(0.001)};
    }
    return {Status::Ok(), {}, sim::Cost(0.0001)};
  }
  std::map<std::string, int> calls;
};

class ShardedMasterTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kShards = 4;

  ShardedMasterTest() : master_(1, &transport_, Config()) {
    transport_.Register(1, &master_);
    for (NodeId id = 10; id < 13; ++id) {
      transport_.Register(id, &stubs_[id - 10]);
      master_.AddIndexNode(id);
    }
  }

  static MasterConfig Config() {
    MasterConfig cfg;
    cfg.acg_policy.cluster_target = 4;
    cfg.num_shards = kShards;
    cfg.publish_metadata_epoch = true;
    return cfg;
  }

  net::RpcHandler::Response Call(const std::string& method,
                                 const std::string& payload) {
    auto r = transport_.Call(100, 1, method, payload);
    return {r.status, r.payload, r.cost};
  }

  net::Transport transport_;
  StubIndexNode stubs_[3];
  MasterNode master_;
};

TEST_F(ShardedMasterTest, ResolveBumpsOnlyTheOwningShardsEpoch) {
  std::vector<uint64_t> before(kShards);
  for (uint32_t s = 0; s < kShards; ++s) {
    before[s] = master_.MetadataEpochOfShard(s);
  }

  // Place files that all live on shard 2: only that shard's epoch moves.
  ResolveUpdateRequest req;
  req.files = FilesOfShard(2, kShards, 3);
  ASSERT_TRUE(Call("mn.resolve_update", Encode(req)).status.ok());
  for (uint32_t s = 0; s < kShards; ++s) {
    if (s == 2) {
      EXPECT_GT(master_.MetadataEpochOfShard(s), before[s]);
    } else {
      EXPECT_EQ(master_.MetadataEpochOfShard(s), before[s])
          << "shard " << s << " epoch moved on another shard's mutation";
    }
  }
}

TEST_F(ShardedMasterTest, ResolveResponsesCarryPerShardEpochVector) {
  ResolveUpdateRequest req;
  req.files = FilesOfShard(0, kShards, 2);
  auto files1 = FilesOfShard(1, kShards, 2);
  req.files.insert(req.files.end(), files1.begin(), files1.end());
  auto resp = Call("mn.resolve_update", Encode(req));
  ASSERT_TRUE(resp.status.ok());
  auto decoded = Decode<ResolveUpdateResponse>(resp.payload);
  ASSERT_TRUE(decoded.ok());
  // > 1 shard publishes the vector, not the legacy scalar.
  EXPECT_EQ(decoded->metadata_epoch, 0u);
  ASSERT_EQ(decoded->shard_epochs.size(), kShards);
  EXPECT_GT(decoded->shard_epochs[0], 0u);
  EXPECT_GT(decoded->shard_epochs[1], 0u);
  // Untouched shards publish nothing on this response.
  EXPECT_EQ(decoded->shard_epochs[3], 0u);
}

TEST_F(ShardedMasterTest, GroupIdsNeverCollideAcrossShards) {
  ResolveUpdateRequest req;
  for (FileId f = 1; f <= 64; ++f) req.files.push_back(f);
  auto resp = Call("mn.resolve_update", Encode(req));
  ASSERT_TRUE(resp.status.ok());
  auto decoded = Decode<ResolveUpdateResponse>(resp.payload);
  ASSERT_TRUE(decoded.ok());
  for (const auto& p : decoded->placements) {
    // A shard's groups carry its residue class, so the file's shard and
    // its group's shard must coincide — the invariant delegated routing
    // and per-shard cache eviction both lean on.
    EXPECT_EQ(ShardOfGroup(p.group, kShards), ShardOfFile(p.file, kShards))
        << "file " << p.file << " group " << p.group;
  }
}

TEST_F(ShardedMasterTest, LeaseLapsesWithoutRenewal) {
  MasterConfig cfg = Config();
  cfg.placement_leases = true;
  cfg.lease_duration_s = 2.0;
  net::Transport transport;
  StubIndexNode stub;
  MasterNode master(1, &transport, cfg);
  transport.Register(1, &master);
  transport.Register(10, &stub);
  master.AddIndexNode(10);

  // One heartbeat grants every shard to the only node.
  HeartbeatRequest hb;
  hb.node = 10;
  hb.now_s = 1.0;
  ASSERT_TRUE(transport.Call(10, 1, "mn.heartbeat", Encode(hb)).status.ok());
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(master.LeaseHolderOfShard(s), 10u);
  }

  // No renewal: the failure-detector tick past expiry lapses every lease.
  TickRequest tick;
  tick.now_s = 10.0;
  ASSERT_TRUE(transport.Call(1, 1, "mn.tick", Encode(tick)).status.ok());
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(master.LeaseHolderOfShard(s), 0u) << "shard " << s;
  }
  EXPECT_GE(master.MetricsSnapshot().counters.at("master.lease.expired"),
            kShards);
}

// --- cluster tests (leases + delegation end to end) ----------------------

ClusterConfig LeaseConfig(int shards) {
  ClusterConfig cfg;
  cfg.index_nodes = 4;
  cfg.master.acg_policy.cluster_target = 10;
  cfg.master_shards = shards;
  cfg.placement_leases = true;
  cfg.lease_duration_s = 3.0;
  return cfg;
}

TEST(MasterLeaseTest, HeartbeatsGrantAndRenewShardLeases) {
  PropellerCluster cluster(LeaseConfig(4));
  ASSERT_TRUE(cluster.client().CreateIndex(SizeIndex()).ok());
  std::vector<FileUpdate> updates;
  for (FileId f = 1; f <= 40; ++f) updates.push_back(Upsert(f, 100));
  ASSERT_TRUE(
      cluster.client().BatchUpdate(std::move(updates), cluster.now()).ok());

  cluster.AdvanceTime(1.0);  // first heartbeat round: grants
  for (uint32_t s = 0; s < 4; ++s) {
    const NodeId holder = cluster.master().LeaseHolderOfShard(s);
    EXPECT_NE(holder, 0u) << "shard " << s << " never granted";
    // Round-robin delegation: shard s -> node s % n.
    IndexNode& node = cluster.index_node(s % cluster.num_index_nodes());
    EXPECT_EQ(holder, node.id());
    EXPECT_TRUE(node.HasLease(s));
    EXPECT_EQ(node.LeaseEpoch(s), cluster.master().MetadataEpochOfShard(s));
  }
  EXPECT_GE(Counter(cluster, "master.lease.granted"), 4u);

  const uint64_t renewed_before = Counter(cluster, "master.lease.renewed");
  cluster.AdvanceTime(2.0);  // two more heartbeat rounds: renewals
  EXPECT_GT(Counter(cluster, "master.lease.renewed"), renewed_before);
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_NE(cluster.master().LeaseHolderOfShard(s), 0u);
  }
}

TEST(MasterLeaseTest, NodeDeathRevokesItsLeases) {
  ClusterConfig cfg = LeaseConfig(4);
  cfg.recovery_journal = true;  // groups survive the kill
  PropellerCluster cluster(cfg);
  ASSERT_TRUE(cluster.client().CreateIndex(SizeIndex()).ok());
  std::vector<FileUpdate> updates;
  for (FileId f = 1; f <= 40; ++f) updates.push_back(Upsert(f, 100));
  ASSERT_TRUE(
      cluster.client().BatchUpdate(std::move(updates), cluster.now()).ok());
  cluster.AdvanceTime(1.0);
  const NodeId victim = cluster.master().LeaseHolderOfShard(0);
  ASSERT_EQ(victim, cluster.index_node(0).id());

  const uint64_t expired_before = Counter(cluster, "master.lease.expired");
  cluster.KillIndexNode(0);
  // Enough missed heartbeats for the failure detector to declare it dead.
  for (int i = 0; i < 6; ++i) cluster.AdvanceTime(1.0);
  EXPECT_GT(Counter(cluster, "master.lease.expired"), expired_before);
  // The dead node's shards are unheld (nobody else heartbeats for them);
  // its surviving shards keep their holders.
  EXPECT_EQ(cluster.master().LeaseHolderOfShard(0), 0u);
  EXPECT_NE(cluster.master().LeaseHolderOfShard(1), 0u);

  // Searches still work: clients fall back to the master for the unheld
  // shard instead of trusting a dead delegate.
  Predicate p;
  p.And("size", CmpOp::kGe, AttrValue(int64_t{100}));
  auto r = cluster.client().Search(p, "by_size");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->files.size(), 40u);
}

TEST(MasterLeaseTest, DelegatedResolveMatchesMasterUnderChurn) {
  PropellerCluster cluster(LeaseConfig(4));
  ASSERT_TRUE(cluster.client().CreateIndex(SizeIndex()).ok());

  std::vector<FileId> known;
  for (int round = 0; round < 3; ++round) {
    // Churn: new files placed (and on later rounds, re-placed groups).
    std::vector<FileUpdate> updates;
    for (FileId f = 1; f <= 30; ++f) {
      FileId id = static_cast<FileId>(round) * 100 + f;
      updates.push_back(Upsert(id, 100));
      known.push_back(id);
    }
    ASSERT_TRUE(
        cluster.client().BatchUpdate(std::move(updates), cluster.now()).ok());
    cluster.AdvanceTime(1.0);  // heartbeat: mirrors re-pushed at new epochs

    // Every known file: the delegate's answer must equal the master's.
    ResolveUpdateRequest req;
    req.files = known;
    auto mcall = cluster.transport().Call(100, PropellerCluster::kMasterId,
                                          "mn.resolve_update", Encode(req));
    ASSERT_TRUE(mcall.status.ok());
    auto mresp = Decode<ResolveUpdateResponse>(mcall.payload);
    ASSERT_TRUE(mresp.ok());

    for (size_t i = 0; i < known.size(); ++i) {
      const uint32_t shard = ShardOfFile(known[i], 4);
      const NodeId holder = cluster.master().LeaseHolderOfShard(shard);
      ASSERT_NE(holder, 0u);
      ResolveUpdateRequest dreq;
      dreq.files = {known[i]};
      auto dcall = cluster.transport().Call(100, holder, "in.resolve_update",
                                            Encode(dreq));
      ASSERT_TRUE(dcall.status.ok()) << dcall.status.ToString();
      auto dresp = Decode<ResolveUpdateResponse>(dcall.payload);
      ASSERT_TRUE(dresp.ok());
      ASSERT_EQ(dresp->placements.size(), 1u);
      EXPECT_EQ(dresp->placements[0].group, mresp->placements[i].group)
          << "file " << known[i];
      EXPECT_EQ(dresp->placements[0].node, mresp->placements[i].node)
          << "file " << known[i];
    }
  }
}

TEST(MasterLeaseTest, SteadyStateResolvesBypassTheMaster) {
  PropellerCluster cluster(LeaseConfig(4));
  ASSERT_TRUE(cluster.client().CreateIndex(SizeIndex()).ok());
  std::vector<FileUpdate> warm;
  for (FileId f = 1; f <= 40; ++f) warm.push_back(Upsert(f, 100));
  // Warm-up: place the files, let the heartbeat grant leases and push
  // mirrors, then one more master round-trip teaches the client the (now
  // nonzero) lease-holder table.
  ASSERT_TRUE(cluster.client().BatchUpdate(warm, cluster.now()).ok());
  cluster.AdvanceTime(1.0);
  ASSERT_TRUE(cluster.client().BatchUpdate(warm, cluster.now()).ok());

  const uint64_t master_resolves =
      Counter(cluster, "mn.calls.mn.resolve_update") +
      Counter(cluster, "mn.calls.mn.resolve_search");
  Predicate p;
  p.And("size", CmpOp::kGe, AttrValue(int64_t{100}));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.client().BatchUpdate(warm, cluster.now()).ok());
    auto r = cluster.client().Search(p, "by_size");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->files.size(), 40u);
  }
  // Steady state: every resolve was answered by a delegate.
  EXPECT_EQ(Counter(cluster, "mn.calls.mn.resolve_update") +
                Counter(cluster, "mn.calls.mn.resolve_search"),
            master_resolves);
  EXPECT_GE(Counter(cluster, "client.resolve.delegated"), 20u);
}

// --- off-mode bit-identity ------------------------------------------------

TEST(MasterShardOffModeTest, ShardsOneLeasesOffIsBitIdentical) {
  auto run = [](bool configure) {
    ClusterConfig cfg;
    cfg.index_nodes = 4;
    cfg.master.acg_policy.cluster_target = 10;
    if (configure) {
      // Explicit off-values must not perturb anything the defaults do.
      cfg.master_shards = 1;
      cfg.placement_leases = false;
      cfg.model_resolve_queue = false;
    }
    PropellerCluster cluster(cfg);
    (void)cluster.client().CreateIndex(SizeIndex());
    std::vector<double> costs;
    for (int round = 0; round < 3; ++round) {
      std::vector<FileUpdate> updates;
      for (FileId f = 1; f <= 50; ++f) {
        updates.push_back(
            Upsert(static_cast<FileId>(round) * 100 + f, 100 + f));
      }
      auto u = cluster.client().BatchUpdate(std::move(updates), cluster.now());
      EXPECT_TRUE(u.ok());
      costs.push_back(u->seconds());
      cluster.AdvanceTime(1.0);
      Predicate p;
      p.And("size", CmpOp::kGe, AttrValue(int64_t{120}));
      auto r = cluster.client().Search(p, "by_size");
      EXPECT_TRUE(r.ok());
      costs.push_back(r->cost.seconds());
    }
    auto counters = cluster.Stats().metrics.counters;
    return std::make_pair(costs, counters.at("net.bytes_sent"));
  };
  auto [costs_default, bytes_default] = run(false);
  auto [costs_off, bytes_off] = run(true);
  EXPECT_EQ(costs_default, costs_off);  // exact, element-wise
  EXPECT_EQ(bytes_default, bytes_off);
}

TEST(MasterShardOffModeTest, ShardedClusterReturnsIdenticalSearchResults) {
  auto run = [](int shards) {
    ClusterConfig cfg;
    cfg.index_nodes = 4;
    cfg.master.acg_policy.cluster_target = 10;
    cfg.master_shards = shards;
    PropellerCluster cluster(cfg);
    (void)cluster.client().CreateIndex(SizeIndex());
    std::vector<FileUpdate> updates;
    for (FileId f = 1; f <= 200; ++f) {
      updates.push_back(Upsert(f, static_cast<int64_t>(f)));
    }
    EXPECT_TRUE(
        cluster.client().BatchUpdate(std::move(updates), cluster.now()).ok());
    Predicate p;
    p.And("size", CmpOp::kGe, AttrValue(int64_t{150}));
    auto r = cluster.client().Search(p, "by_size");
    EXPECT_TRUE(r.ok());
    return r->files;
  };
  // Routing differs (per-shard fill groups), results must not.
  EXPECT_EQ(run(1), run(8));
}

// --- concurrency (TSan target: tsan-master preset) -----------------------

TEST(MasterShardConcurrencyTest, ConcurrentResolvesAcrossShardsAreClean) {
  ClusterConfig cfg = LeaseConfig(4);
  cfg.master.acg_policy.cluster_target = 10;
  PropellerCluster cluster(cfg);
  ASSERT_TRUE(cluster.client().CreateIndex(SizeIndex()).ok());
  std::vector<FileUpdate> warm;
  for (FileId f = 1; f <= 80; ++f) warm.push_back(Upsert(f, 100));
  ASSERT_TRUE(cluster.client().BatchUpdate(warm, cluster.now()).ok());
  cluster.AdvanceTime(1.0);

  // Hammer the master's resolve surface from several threads while
  // heartbeats (lease grants) and delegated resolves run: the per-shard
  // mutexes must keep every path clean with no global lock.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cluster, t] {
      for (int i = 0; i < 50; ++i) {
        ResolveUpdateRequest req;
        for (FileId f = 1; f <= 20; ++f) {
          req.files.push_back(static_cast<FileId>(t) * 20 + f);
        }
        auto r = cluster.transport().Call(
            200 + static_cast<NodeId>(t), PropellerCluster::kMasterId,
            "mn.resolve_update", Encode(req));
        ASSERT_TRUE(r.status.ok());
        ResolveSearchRequest sreq;
        sreq.index_name = "by_size";
        auto s = cluster.transport().Call(
            200 + static_cast<NodeId>(t), PropellerCluster::kMasterId,
            "mn.resolve_search", Encode(sreq));
        ASSERT_TRUE(s.status.ok());
      }
    });
  }
  // Heartbeats concurrently re-grant leases against the resolve storm.
  std::thread hb([&cluster] {
    for (int i = 0; i < 20; ++i) {
      HeartbeatRequest req;
      req.node = cluster.index_node(0).id();
      req.now_s = cluster.now();
      req.groups = cluster.index_node(0).GroupStats();
      auto r = cluster.transport().Call(req.node, PropellerCluster::kMasterId,
                                        "mn.heartbeat", Encode(req));
      ASSERT_TRUE(r.status.ok());
    }
  });
  for (auto& t : threads) t.join();
  hb.join();
  // Sanity: the cluster still routes correctly after the storm.
  Predicate p;
  p.And("size", CmpOp::kGe, AttrValue(int64_t{100}));
  auto r = cluster.client().Search(p, "by_size");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->files.size(), 80u);
}

}  // namespace
}  // namespace propeller::core
