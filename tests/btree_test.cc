#include "index/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"
#include "sim/io_context.h"

namespace propeller::index {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  sim::IoContext io_;
};

TEST_F(BTreeTest, EmptyTreeScansEmpty) {
  BPlusTree t(io_.CreateStore());
  auto r = t.Scan(KeyRange::Everything());
  EXPECT_TRUE(r.files.empty());
  EXPECT_EQ(t.NumPostings(), 0u);
  EXPECT_EQ(t.Height(), 1u);
}

TEST_F(BTreeTest, InsertAndExactLookup) {
  BPlusTree t(io_.CreateStore());
  t.Insert(AttrValue(int64_t{42}), 1);
  t.Insert(AttrValue(int64_t{42}), 2);
  t.Insert(AttrValue(int64_t{7}), 3);
  auto r = t.Scan(KeyRange::Exactly(AttrValue(int64_t{42})));
  std::sort(r.files.begin(), r.files.end());
  EXPECT_EQ(r.files, (std::vector<FileId>{1, 2}));
}

TEST_F(BTreeTest, RangeScanBoundsSemantics) {
  BPlusTree t(io_.CreateStore(), /*order=*/4);
  for (int64_t k = 0; k < 100; ++k) t.Insert(AttrValue(k), static_cast<FileId>(k));

  KeyRange r;
  r.lo = AttrValue(int64_t{10});
  r.lo_inclusive = false;
  r.hi = AttrValue(int64_t{20});
  r.hi_inclusive = true;
  auto res = t.Scan(r);
  std::sort(res.files.begin(), res.files.end());
  std::vector<FileId> expect;
  for (FileId f = 11; f <= 20; ++f) expect.push_back(f);
  EXPECT_EQ(res.files, expect);
}

TEST_F(BTreeTest, StringKeysSortLexicographically) {
  BPlusTree t(io_.CreateStore(), /*order=*/4);
  t.Insert(AttrValue("banana"), 1);
  t.Insert(AttrValue("apple"), 2);
  t.Insert(AttrValue("cherry"), 3);
  KeyRange r;
  r.lo = AttrValue("apple");
  r.hi = AttrValue("banana");
  auto res = t.Scan(r);
  std::sort(res.files.begin(), res.files.end());
  EXPECT_EQ(res.files, (std::vector<FileId>{1, 2}));
}

TEST_F(BTreeTest, SplitsKeepInvariants) {
  BPlusTree t(io_.CreateStore(), /*order=*/4);
  for (int64_t k = 0; k < 1000; ++k) {
    t.Insert(AttrValue(k * 7 % 1000), static_cast<FileId>(k));
  }
  std::string err;
  EXPECT_TRUE(t.CheckInvariants(&err)) << err;
  EXPECT_GT(t.Height(), 2u);
  auto all = t.Scan(KeyRange::Everything());
  EXPECT_EQ(all.files.size(), 1000u);
}

TEST_F(BTreeTest, RemoveSpecificPosting) {
  BPlusTree t(io_.CreateStore());
  t.Insert(AttrValue(int64_t{5}), 100);
  t.Insert(AttrValue(int64_t{5}), 200);
  t.Remove(AttrValue(int64_t{5}), 100);
  auto r = t.Scan(KeyRange::Exactly(AttrValue(int64_t{5})));
  EXPECT_EQ(r.files, (std::vector<FileId>{200}));
  // Removing an absent posting is a no-op.
  t.Remove(AttrValue(int64_t{5}), 999);
  t.Remove(AttrValue(int64_t{777}), 1);
  EXPECT_EQ(t.NumPostings(), 1u);
  std::string err;
  EXPECT_TRUE(t.CheckInvariants(&err)) << err;
}

TEST_F(BTreeTest, DrainToEmptyAndReuse) {
  BPlusTree t(io_.CreateStore(), /*order=*/4);
  for (int64_t k = 0; k < 300; ++k) t.Insert(AttrValue(k), static_cast<FileId>(k));
  for (int64_t k = 0; k < 300; ++k) t.Remove(AttrValue(k), static_cast<FileId>(k));
  EXPECT_EQ(t.NumPostings(), 0u);
  std::string err;
  EXPECT_TRUE(t.CheckInvariants(&err)) << err;
  EXPECT_TRUE(t.Scan(KeyRange::Everything()).files.empty());
  // The tree must still accept inserts after being drained.
  t.Insert(AttrValue(int64_t{1}), 1);
  EXPECT_EQ(t.Scan(KeyRange::Everything()).files.size(), 1u);
  EXPECT_TRUE(t.CheckInvariants(&err)) << err;
}

TEST_F(BTreeTest, DeeperTreeCostsMorePages) {
  // Cost model sanity: a bigger tree touches more pages per insert.
  sim::IoContext cold(sim::IoParams{.disk = {}, .cache_pages = 0, .cache_hit_us = 2});
  BPlusTree small(cold.CreateStore(), 16);
  BPlusTree big(cold.CreateStore(), 16);
  for (int64_t k = 0; k < 50; ++k) small.Insert(AttrValue(k), 1);
  for (int64_t k = 0; k < 20000; ++k) big.Insert(AttrValue(k), 1);
  sim::Cost c_small = small.Insert(AttrValue(int64_t{7}), 2);
  sim::Cost c_big = big.Insert(AttrValue(int64_t{7}), 2);
  EXPECT_GT(c_big.seconds(), c_small.seconds());
}

struct FuzzParam {
  uint32_t order;
  int ops;
  uint64_t seed;
  int64_t key_space;
};

class BTreeFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

// Property test: a random interleaving of inserts/removes must (a) keep
// structural invariants and (b) agree with a reference multimap on every
// range scan.
TEST_P(BTreeFuzzTest, MatchesReferenceModel) {
  const FuzzParam p = GetParam();
  sim::IoContext io;
  BPlusTree t(io.CreateStore(), p.order);
  std::multimap<int64_t, FileId> model;
  Rng rng(p.seed);

  for (int op = 0; op < p.ops; ++op) {
    int64_t key = rng.UniformInt(0, p.key_space - 1);
    auto file = static_cast<FileId>(rng.Uniform(64));
    bool remove = rng.Bernoulli(0.4) && !model.empty();
    if (remove) {
      // Remove a (key,file) that exists half the time, a random one otherwise.
      if (rng.Bernoulli(0.5)) {
        auto it = model.begin();
        std::advance(it, static_cast<long>(rng.Uniform(model.size())));
        key = it->first;
        file = it->second;
      }
      t.Remove(AttrValue(key), file);
      for (auto [it, end] = model.equal_range(key); it != end; ++it) {
        if (it->second == file) {
          model.erase(it);
          break;
        }
      }
    } else {
      t.Insert(AttrValue(key), file);
      model.emplace(key, file);
    }

    if (op % 97 == 0) {
      std::string err;
      ASSERT_TRUE(t.CheckInvariants(&err)) << "op " << op << ": " << err;
    }
  }

  std::string err;
  ASSERT_TRUE(t.CheckInvariants(&err)) << err;
  ASSERT_EQ(t.NumPostings(), model.size());

  // Compare a batch of random range scans against the model.
  for (int q = 0; q < 25; ++q) {
    int64_t a = rng.UniformInt(0, p.key_space - 1);
    int64_t b = rng.UniformInt(0, p.key_space - 1);
    if (a > b) std::swap(a, b);
    KeyRange range;
    range.lo = AttrValue(a);
    range.hi = AttrValue(b);
    range.lo_inclusive = rng.Bernoulli(0.5);
    range.hi_inclusive = rng.Bernoulli(0.5);

    auto got = t.Scan(range);
    std::vector<FileId> expect;
    for (auto it = model.lower_bound(a); it != model.end() && it->first <= b; ++it) {
      if (it->first == a && !range.lo_inclusive) continue;
      if (it->first == b && !range.hi_inclusive) continue;
      expect.push_back(it->second);
    }
    std::sort(got.files.begin(), got.files.end());
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(got.files, expect) << "range [" << a << "," << b << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Orders, BTreeFuzzTest,
    ::testing::Values(FuzzParam{4, 2000, 11, 50}, FuzzParam{4, 2000, 12, 5000},
                      FuzzParam{8, 3000, 13, 200}, FuzzParam{16, 3000, 14, 64},
                      FuzzParam{64, 5000, 15, 1000},
                      FuzzParam{5, 2500, 16, 17},   // odd order, tiny keyspace
                      FuzzParam{128, 4000, 17, 100000}));

}  // namespace
}  // namespace propeller::index
