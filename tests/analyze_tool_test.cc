// Selftest for the propeller_analyze passes (tools/analyze) against
// synthetic in-memory sources: proves each pass actually detects the
// defect class it guards against (and stays quiet on the clean idiom),
// so `ctest -L analysis` fails if the analyzer regresses — not only if
// the analyzed sources do.
#include "analyze.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace propeller::analyze {
namespace {

int FatalCount(const std::vector<Finding>& findings) {
  int n = 0;
  for (const Finding& f : findings) n += f.fatal ? 1 : 0;
  return n;
}

bool AnyMentions(const std::vector<Finding>& findings, const std::string& s) {
  for (const Finding& f : findings) {
    if (f.message.find(s) != std::string::npos) return true;
  }
  return false;
}

std::string WriteTemp(const std::string& name, const std::string& text) {
  std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return path;
}

// ---- wire pass ---------------------------------------------------------

constexpr char kProtoClean[] = R"cc(
namespace propeller::core {
namespace {
void PutTrailingEpoch(BinaryWriter& w, uint64_t epoch) {
  if (epoch != 0) w.PutU64(epoch);
}
Status GetTrailingEpoch(BinaryReader& r, uint64_t& epoch) {
  epoch = 0;
  if (r.AtEnd()) return Status::Ok();
  return r.GetU64(epoch);
}
}  // namespace
void FooRequest::Serialize(BinaryWriter& w) const {
  w.PutU64(id);
  w.PutU32(static_cast<uint32_t>(items.size()));
  for (uint64_t x : items) w.PutU64(x);
  PutTrailingEpoch(w, epoch);
}
Status FooRequest::Deserialize(BinaryReader& r, FooRequest& out) {
  PROPELLER_RETURN_IF_ERROR(r.GetU64(out.id));
  uint32_t n = 0;
  PROPELLER_RETURN_IF_ERROR(r.GetU32(n));
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t x = 0;
    PROPELLER_RETURN_IF_ERROR(r.GetU64(x));
    out.items.push_back(x);
  }
  return GetTrailingEpoch(r, out.epoch);
}
}  // namespace propeller::core
)cc";

std::vector<Finding> RunWire(const std::string& proto_text,
                             const std::string& golden_path = "",
                             bool update = false) {
  Options opt;
  opt.golden = golden_path;
  opt.update_golden = update;
  std::vector<Finding> findings;
  SourceFile proto = MakeSource("src/core/proto.cc", proto_text);
  RunWireSchemaPass(opt, proto, &findings);
  return findings;
}

TEST(WireSchemaPass, CleanPairWithTrailingOptionalHelper) {
  std::vector<Finding> findings = RunWire(kProtoClean);
  EXPECT_EQ(FatalCount(findings), 0)
      << (findings.empty() ? "" : findings[0].message);
}

TEST(WireSchemaPass, DeletedDecodeFieldIsSymmetryBreak) {
  std::string mutated = kProtoClean;
  size_t pos = mutated.find("PROPELLER_RETURN_IF_ERROR(r.GetU64(out.id));");
  ASSERT_NE(pos, std::string::npos);
  mutated.erase(pos, std::string("PROPELLER_RETURN_IF_ERROR(r.GetU64(out.id));").size());
  std::vector<Finding> findings = RunWire(mutated);
  EXPECT_GE(FatalCount(findings), 1);
  EXPECT_TRUE(AnyMentions(findings, "FooRequest"));
}

TEST(WireSchemaPass, SwappedEncodeFieldsAreFieldMismatch) {
  std::string mutated = kProtoClean;
  size_t pos = mutated.find("w.PutU64(id);");
  ASSERT_NE(pos, std::string::npos);
  mutated.replace(pos, std::string("w.PutU64(id);").size(),
                  "w.PutU32(static_cast<uint32_t>(items.size()));");
  size_t pos2 = mutated.find("w.PutU32(static_cast<uint32_t>(items.size()));",
                             pos + 10);
  ASSERT_NE(pos2, std::string::npos);
  mutated.replace(
      pos2, std::string("w.PutU32(static_cast<uint32_t>(items.size()));").size(),
      "w.PutU64(id);");
  std::vector<Finding> findings = RunWire(mutated);
  EXPECT_GE(FatalCount(findings), 1);
  EXPECT_TRUE(AnyMentions(findings, "mismatch"));
}

TEST(WireSchemaPass, RequiredFieldAfterOptionalViolatesDiscipline) {
  std::string mutated = kProtoClean;
  size_t pos = mutated.find("  PutTrailingEpoch(w, epoch);");
  ASSERT_NE(pos, std::string::npos);
  mutated.insert(pos + std::string("  PutTrailingEpoch(w, epoch);").size(),
                 "\n  w.PutU32(checksum);");
  std::vector<Finding> findings = RunWire(mutated);
  EXPECT_GE(FatalCount(findings), 1);
  EXPECT_TRUE(AnyMentions(findings, "follows an optional"));
}

TEST(WireSchemaPass, GoldenDetectsMidMessageInsert) {
  std::string golden = WriteTemp("wire_insert.golden", "");
  EXPECT_EQ(FatalCount(RunWire(kProtoClean, golden, /*update=*/true)), 0);
  // Recorded snapshot now matches the clean source.
  EXPECT_EQ(FatalCount(RunWire(kProtoClean, golden)), 0);

  std::string mutated = kProtoClean;
  size_t pos = mutated.find("  w.PutU32(static_cast<uint32_t>(items.size()));");
  ASSERT_NE(pos, std::string::npos);
  mutated.insert(pos, "  w.PutU32(version);\n");
  pos = mutated.find("  uint32_t n = 0;");
  ASSERT_NE(pos, std::string::npos);
  mutated.insert(pos,
                 "  uint32_t version = 0;\n"
                 "  PROPELLER_RETURN_IF_ERROR(r.GetU32(version));\n");
  std::vector<Finding> findings = RunWire(mutated, golden);
  EXPECT_GE(FatalCount(findings), 1);
  EXPECT_TRUE(AnyMentions(findings, "WIRE-BREAKING"));
  // Field-level diff: the inserted field appears in the report.
  EXPECT_TRUE(AnyMentions(findings, "u32 version"));
}

TEST(WireSchemaPass, TrailingOptionalExtensionIsCalledLegal) {
  std::string golden = WriteTemp("wire_extend.golden", "");
  EXPECT_EQ(FatalCount(RunWire(kProtoClean, golden, /*update=*/true)), 0);

  std::string extended = kProtoClean;
  size_t pos = extended.find("  PutTrailingEpoch(w, epoch);");
  ASSERT_NE(pos, std::string::npos);
  extended.replace(pos, std::string("  PutTrailingEpoch(w, epoch);").size(),
                   "  PutTrailingEpoch(w, epoch);\n"
                   "  if (flags != 0) w.PutU32(flags);");
  pos = extended.find("  return GetTrailingEpoch(r, out.epoch);");
  ASSERT_NE(pos, std::string::npos);
  extended.replace(
      pos, std::string("  return GetTrailingEpoch(r, out.epoch);").size(),
      "  PROPELLER_RETURN_IF_ERROR(GetTrailingEpoch(r, out.epoch));\n"
      "  if (r.AtEnd()) return Status::Ok();\n"
      "  return r.GetU32(out.flags);");
  std::vector<Finding> findings = RunWire(extended, golden);
  // Still fails (snapshot must be refreshed deliberately) but is
  // classified as the legal evolution path.
  EXPECT_GE(FatalCount(findings), 1);
  EXPECT_TRUE(AnyMentions(findings, "legal evolution"));
  EXPECT_TRUE(AnyMentions(findings, "--update-golden"));

  // After refreshing the snapshot the extended source is clean.
  EXPECT_EQ(FatalCount(RunWire(extended, golden, /*update=*/true)), 0);
  EXPECT_EQ(FatalCount(RunWire(extended, golden)), 0);
}

// ---- lock pass ---------------------------------------------------------

constexpr char kMutexHeader[] = R"cc(
namespace propeller {
enum class LockRank : int {
  kUnranked = 0,
  kLow = 10,
  kMid = 20,
  kHigh = 30,
};
class Mutex {};
class SharedMutex {};
}  // namespace propeller
)cc";

std::vector<Finding> RunLocks(const std::string& source_text,
                              const std::string& design_path = "") {
  Options opt;
  opt.design = design_path;
  std::vector<Finding> findings;
  std::vector<SourceFile> files;
  files.push_back(MakeSource("src/common/mutex.h", kMutexHeader));
  files.push_back(MakeSource("src/core/node.cc", source_text));
  RunLockOrderPass(opt, files, &findings);
  return findings;
}

constexpr char kLockClean[] = R"cc(
namespace x {
class Journal {
 public:
  void Append() { MutexLock lock(mu_); }
 private:
  Mutex mu_{LockRank::kHigh, "Journal::mu_"};
};
class Node {
 public:
  void Publish() {
    MutexLock lock(mu_);
    journal_->Append();
  }
  void Scoped() {
    { MutexLock lock(low_); }
    MutexLock lock(mu_);
  }
 private:
  Mutex low_{LockRank::kLow, "Node::low_"};
  Mutex mu_{LockRank::kMid, "Node::mu_"};
  Journal* journal_ = nullptr;
};
}  // namespace x
)cc";

TEST(LockOrderPass, CleanOrderingHasNoFindings) {
  std::vector<Finding> findings = RunLocks(kLockClean);
  EXPECT_EQ(FatalCount(findings), 0) << (findings.empty()
      ? ""
      : findings[0].message);
}

TEST(LockOrderPass, NestedInversionIsFlagged) {
  std::string bad = kLockClean;
  // Acquire kMid then kLow in the same scope: rank inversion.
  size_t pos = bad.find("    { MutexLock lock(low_); }\n    MutexLock lock(mu_);");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos,
              std::string("    { MutexLock lock(low_); }\n"
                          "    MutexLock lock(mu_);")
                  .size(),
              "    MutexLock a(mu_);\n    MutexLock b(low_);");
  std::vector<Finding> findings = RunLocks(bad);
  EXPECT_GE(FatalCount(findings), 1);
  EXPECT_TRUE(AnyMentions(findings, "lock-order violation"));
  EXPECT_TRUE(AnyMentions(findings, "kMid"));
  EXPECT_TRUE(AnyMentions(findings, "kLow"));
}

TEST(LockOrderPass, CallPropagationCatchesInvertedCallee) {
  // Journal::Append acquires kHigh; calling it while holding a rank above
  // kHigh must be flagged through the one-level call propagation.
  std::string bad = kLockClean;
  size_t pos = bad.find("Mutex mu_{LockRank::kMid, \"Node::mu_\"};");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, std::string("Mutex mu_{LockRank::kMid, \"Node::mu_\"};").size(),
              "Mutex mu_{LockRank::kHigh, \"Node::mu_\"};");
  std::vector<Finding> findings = RunLocks(bad);
  EXPECT_GE(FatalCount(findings), 1);
  EXPECT_TRUE(AnyMentions(findings, "Journal::Append"));
}

TEST(LockOrderPass, UnrankedMutexNeedsAllow) {
  std::string src = R"cc(
namespace x {
class Scratch {
 private:
  Mutex mu_;
};
}  // namespace x
)cc";
  std::vector<Finding> findings = RunLocks(src);
  EXPECT_GE(FatalCount(findings), 1);
  EXPECT_TRUE(AnyMentions(findings, "unranked"));

  std::string allowed = R"cc(
namespace x {
class Scratch {
 private:
  Mutex mu_;  // analyze:allow(locks)
};
}  // namespace x
)cc";
  EXPECT_EQ(FatalCount(RunLocks(allowed)), 0);
}

TEST(LockOrderPass, DesignTableCrossCheck) {
  std::string good_table = WriteTemp("design_ok.md",
      "| `kLow` (10) | `x::Node::low_` | scratch |\n"
      "| `kMid` (20) | `x::Node::mu_` | node state |\n"
      "| `kHigh` (30) | `x::Journal::mu_` | journal |\n");
  EXPECT_EQ(FatalCount(RunLocks(kLockClean, good_table)), 0);

  // Wrong number for kMid, plus a row for a mutex that does not exist.
  std::string bad_table = WriteTemp("design_bad.md",
      "| `kLow` (10) | `x::Node::low_` | scratch |\n"
      "| `kMid` (25) | `x::Node::mu_` | node state |\n"
      "| `kHigh` (30) | `x::Journal::mu_` | journal |\n"
      "| `kHigh` (30) | `x::Ghost::mu_` | gone |\n");
  std::vector<Finding> findings = RunLocks(kLockClean, bad_table);
  EXPECT_GE(FatalCount(findings), 2);
  EXPECT_TRUE(AnyMentions(findings, "kMid"));
  EXPECT_TRUE(AnyMentions(findings, "Ghost"));

  // A ranked mutex missing from the table is also a finding.
  std::string short_table = WriteTemp("design_short.md",
      "| `kLow` (10) | `x::Node::low_` | scratch |\n"
      "| `kHigh` (30) | `x::Journal::mu_` | journal |\n");
  findings = RunLocks(kLockClean, short_table);
  EXPECT_GE(FatalCount(findings), 1);
  EXPECT_TRUE(AnyMentions(findings, "missing from the DESIGN.md rank table"));
}

// ---- determinism pass --------------------------------------------------

std::vector<Finding> RunDet(const std::string& text,
                            const std::string& path = "src/core/node.cc") {
  Options opt;
  std::vector<Finding> findings;
  std::vector<SourceFile> files;
  files.push_back(MakeSource(path, text));
  RunDeterminismPass(opt, files, &findings);
  return findings;
}

TEST(DeterminismPass, WallClockBannedOutsideObs) {
  std::string src = R"cc(
namespace x {
double Now() {
  return std::chrono::duration<double>(
      std::chrono::steady_clock::now().time_since_epoch()).count();
}
}  // namespace x
)cc";
  std::vector<Finding> findings = RunDet(src);
  EXPECT_GE(FatalCount(findings), 1);
  EXPECT_TRUE(AnyMentions(findings, "steady_clock"));

  // The same text under src/obs/ is the sanctioned wall-time shim.
  EXPECT_EQ(FatalCount(RunDet(src, "src/obs/wall.cc")), 0);

  // And an allow comment documents a deliberate exception anywhere.
  std::string allowed = src;
  size_t pos = allowed.find("std::chrono::steady_clock::now");
  allowed.insert(pos, "// analyze:allow(determinism)\n      ");
  EXPECT_EQ(FatalCount(RunDet(allowed)), 0);
}

TEST(DeterminismPass, AmbientRandomnessBanned) {
  std::string src = R"cc(
namespace x {
int Roll() { return rand() % 6; }
uint64_t Seed() { std::random_device rd; return rd(); }
}  // namespace x
)cc";
  std::vector<Finding> findings = RunDet(src);
  EXPECT_GE(FatalCount(findings), 2);
  EXPECT_TRUE(AnyMentions(findings, "rand"));
  EXPECT_TRUE(AnyMentions(findings, "random_device"));

  // Identifiers merely *named* rand / time are fine.
  std::string benign = R"cc(
namespace x {
struct S { double time = 0; int rand = 0; };
double F(const S& s) { return s.time + s.rand; }
}  // namespace x
)cc";
  EXPECT_EQ(FatalCount(RunDet(benign)), 0);
}

TEST(DeterminismPass, UnorderedIterationIntoWriterFlagged) {
  std::string src = R"cc(
namespace x {
class Table {
 public:
  void Snapshot(BinaryWriter& w) const {
    for (const auto& [k, v] : rows_) {
      w.PutU64(k);
      w.PutU64(v);
    }
  }
 private:
  std::unordered_map<uint64_t, uint64_t> rows_;
};
}  // namespace x
)cc";
  std::vector<Finding> findings = RunDet(src);
  EXPECT_GE(FatalCount(findings), 1);
  EXPECT_TRUE(AnyMentions(findings, "unordered"));

  // The sorted-keys idiom is clean: the serializing loop runs over a
  // sorted vector, the unordered loop only collects.
  std::string sorted = R"cc(
namespace x {
class Table {
 public:
  void Snapshot(BinaryWriter& w) const {
    std::vector<uint64_t> keys;
    for (const auto& [k, v] : rows_) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    for (uint64_t k : keys) {
      w.PutU64(k);
      w.PutU64(rows_.at(k));
    }
  }
 private:
  std::unordered_map<uint64_t, uint64_t> rows_;
};
}  // namespace x
)cc";
  EXPECT_EQ(FatalCount(RunDet(sorted)), 0);
}

}  // namespace
}  // namespace propeller::analyze
