#include <gtest/gtest.h>

#include <algorithm>

#include "fs/namespace.h"
#include "fs/vfs.h"

namespace propeller::fs {
namespace {

TEST(NamespaceTest, CreateStatAndAutoParents) {
  Namespace ns;
  auto id = ns.CreateFile("/usr/bin/gcc", 1000, 42, 7);
  ASSERT_TRUE(id.ok());
  auto st = ns.Stat("/usr/bin/gcc");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 1000);
  EXPECT_EQ(st->mtime, 42);
  EXPECT_EQ(st->uid, 7);
  EXPECT_FALSE(st->is_dir);
  EXPECT_TRUE(ns.Stat("/usr/bin")->is_dir);
  EXPECT_EQ(ns.NumFiles(), 1u);
  EXPECT_EQ(ns.NumDirs(), 2u);

  auto by_id = ns.StatById(*id);
  ASSERT_TRUE(by_id.ok());
  EXPECT_EQ(by_id->path, "/usr/bin/gcc");
}

TEST(NamespaceTest, DuplicateAndMissing) {
  Namespace ns;
  ASSERT_TRUE(ns.CreateFile("/a/b", 1, 1).ok());
  EXPECT_EQ(ns.CreateFile("/a/b", 1, 1).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(ns.Stat("/nope").status().code(), StatusCode::kNotFound);
  // A file component in the middle of the path is invalid.
  EXPECT_FALSE(ns.CreateFile("/a/b/c", 1, 1).ok());
}

TEST(NamespaceTest, UpdateAndUnlink) {
  Namespace ns;
  ASSERT_TRUE(ns.CreateFile("/f", 10, 1).ok());
  ASSERT_TRUE(ns.Update("/f", 99, 2).ok());
  EXPECT_EQ(ns.Stat("/f")->size, 99);
  ASSERT_TRUE(ns.Unlink("/f").ok());
  EXPECT_FALSE(ns.Exists("/f"));
  EXPECT_EQ(ns.Unlink("/f").code(), StatusCode::kNotFound);
  EXPECT_EQ(ns.NumFiles(), 0u);
}

TEST(NamespaceTest, UnlinkNonEmptyDirRefused) {
  Namespace ns;
  ASSERT_TRUE(ns.CreateFile("/d/f", 1, 1).ok());
  EXPECT_EQ(ns.Unlink("/d").code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(ns.Unlink("/d/f").ok());
  EXPECT_TRUE(ns.Unlink("/d").ok());
}

TEST(NamespaceTest, ListAndForEachFile) {
  Namespace ns;
  ASSERT_TRUE(ns.CreateFile("/d/a", 1, 1).ok());
  ASSERT_TRUE(ns.CreateFile("/d/b", 2, 1).ok());
  ASSERT_TRUE(ns.MkdirAll("/d/sub").ok());
  auto names = ns.List("/d");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b", "sub"}));

  int count = 0;
  ns.ForEachFile([&](const FileStat&) { ++count; });
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(ns.List("/d/a").ok());  // not a directory
}

TEST(FileStatTest, ToAttrSetCarriesInodeFields) {
  FileStat st;
  st.size = 123;
  st.mtime = 456;
  st.uid = 7;
  st.path = "/x/y";
  auto a = st.ToAttrSet();
  EXPECT_EQ(a.Find("size")->as_int(), 123);
  EXPECT_EQ(a.Find("mtime")->as_int(), 456);
  EXPECT_EQ(a.Find("uid")->as_int(), 7);
  EXPECT_EQ(a.Find("path")->as_string(), "/x/y");
}

class RecordingListener : public AccessListener {
 public:
  void OnEvent(const AccessEvent& e) override { events.push_back(e); }
  std::vector<AccessEvent> events;
};

TEST(VfsTest, EmitsOrderedEvents) {
  Vfs vfs;
  RecordingListener listener;
  vfs.AddListener(&listener);

  auto open = vfs.Open(/*pid=*/1, "/a/in.txt", OpenMode::kRead, /*create=*/true);
  ASSERT_TRUE(open.ok());
  ASSERT_TRUE(vfs.Read(open->fd, 100).ok());
  auto out = vfs.Open(1, "/a/out.txt", OpenMode::kWrite, true);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(vfs.Write(out->fd, 100).ok());
  ASSERT_TRUE(vfs.Close(out->fd).ok());
  ASSERT_TRUE(vfs.Close(open->fd).ok());

  // create+open for in, create+open for out, close out, close in.
  ASSERT_EQ(listener.events.size(), 6u);
  using T = AccessEvent::Type;
  EXPECT_EQ(listener.events[0].type, T::kCreate);
  EXPECT_EQ(listener.events[1].type, T::kOpen);
  EXPECT_EQ(listener.events[2].type, T::kCreate);
  EXPECT_EQ(listener.events[3].type, T::kOpen);
  EXPECT_EQ(listener.events[4].type, T::kClose);
  EXPECT_TRUE(listener.events[4].written);
  EXPECT_EQ(listener.events[5].type, T::kClose);
  EXPECT_FALSE(listener.events[5].written);
  // seq strictly increases
  for (size_t i = 1; i < listener.events.size(); ++i) {
    EXPECT_GT(listener.events[i].seq, listener.events[i - 1].seq);
  }
}

TEST(VfsTest, ModeEnforcement) {
  Vfs vfs;
  auto r = vfs.Open(1, "/f", OpenMode::kRead, true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(vfs.Write(r->fd, 10).status().code(), StatusCode::kFailedPrecondition);
  auto w = vfs.Open(1, "/f", OpenMode::kWrite);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(vfs.Read(w->fd, 10).status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(vfs.Write(w->fd, 10).ok());
  EXPECT_TRUE(vfs.Close(w->fd).ok());
  EXPECT_TRUE(vfs.Close(r->fd).ok());
  EXPECT_FALSE(vfs.Close(r->fd).ok());  // double close
  EXPECT_EQ(vfs.NumOpenFds(), 0u);
}

TEST(VfsTest, WriteGrowsFileAndBumpsMtime) {
  Vfs vfs;
  auto w = vfs.Open(1, "/f", OpenMode::kWrite, true);
  ASSERT_TRUE(w.ok());
  int64_t t0 = vfs.now();
  vfs.AdvanceTime(100);
  ASSERT_TRUE(vfs.Write(w->fd, 4096).ok());
  ASSERT_TRUE(vfs.Write(w->fd, 4096).ok());
  auto st = vfs.ns().Stat("/f");
  EXPECT_EQ(st->size, 8192);
  EXPECT_EQ(st->mtime, t0 + 100);
}

TEST(VfsTest, OpenMissingWithoutCreateFails) {
  Vfs vfs;
  EXPECT_EQ(vfs.Open(1, "/missing", OpenMode::kRead).status().code(),
            StatusCode::kNotFound);
}

TEST(VfsTest, FuseProfileCostsMoreThanNative) {
  Vfs native(FsProfile{.name = "ext4", .meta_us = 60, .data_op_us = 5});
  Vfs fuse(FsProfile{.name = "ptfs", .meta_us = 159, .data_op_us = 30});
  auto n = native.Open(1, "/f", OpenMode::kWrite, true);
  auto f = fuse.Open(1, "/f", OpenMode::kWrite, true);
  ASSERT_TRUE(n.ok());
  ASSERT_TRUE(f.ok());
  EXPECT_GT(f->cost.seconds(), n->cost.seconds());
}

}  // namespace
}  // namespace propeller::fs
