// Concurrency coverage for the wall-clock parallel execution engine.
//
// Two properties are pinned down:
//   1. Determinism — with parallel execution enabled, search results AND
//      simulated costs are bit-identical to the serial engine (the paper
//      figures must not depend on the execution mode).
//   2. Safety — multiple real client threads searching and staging updates
//      against the same cluster race nothing: every mid-flight search sees
//      between the pre-update and post-update result sets, and the final
//      state matches a serial reference run.  Run this one under
//      ThreadSanitizer (-DPROPELLER_SANITIZE=thread, see README.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/cluster.h"
#include "core/query_parser.h"
#include "workload/dataset.h"

namespace propeller::core {
namespace {

constexpr uint64_t kBaseFiles = 3000;
constexpr uint64_t kExtraFiles = 600;
constexpr char kQuery[] = "size>16m";

ClusterConfig MakeConfig(bool parallel) {
  ClusterConfig cfg;
  cfg.index_nodes = 4;
  cfg.parallel_execution = parallel;
  cfg.client.fanout_threads = 4;
  cfg.index_node.search_threads = 4;
  cfg.master.acg_policy.cluster_target = 250;
  cfg.master.acg_policy.merge_limit = 250;
  return cfg;
}

workload::DatasetSpec Spec() {
  workload::DatasetSpec spec;
  spec.num_files = kBaseFiles + kExtraFiles;
  // Make the query land a healthy fraction of files in both id ranges.
  spec.large_file_fraction = 0.25;
  return spec;
}

std::unique_ptr<PropellerCluster> MakeLoadedCluster(bool parallel) {
  auto cluster = std::make_unique<PropellerCluster>(MakeConfig(parallel));
  auto& client = cluster->client();
  EXPECT_TRUE(
      client.CreateIndex({"by_size", index::IndexType::kBTree, {"size"}}).ok());
  auto load = client.BatchUpdate(workload::SyntheticRows(1, kBaseFiles, Spec()),
                                 cluster->now());
  EXPECT_TRUE(load.ok());
  cluster->AdvanceTime(6.0);
  return cluster;
}

std::set<index::FileId> SearchSet(PropellerClient& client) {
  auto parsed = ParseQuery(kQuery, 1'000'000);
  EXPECT_TRUE(parsed.ok());
  auto out = client.Search(parsed->predicate);
  EXPECT_TRUE(out.ok());
  return {out->files.begin(), out->files.end()};
}

TEST(ParallelSearchTest, ParallelModeIsBitIdenticalToSerial) {
  auto serial = MakeLoadedCluster(false);
  auto parallel = MakeLoadedCluster(true);

  auto parsed = ParseQuery(kQuery, 1'000'000);
  ASSERT_TRUE(parsed.ok());
  for (int round = 0; round < 3; ++round) {
    auto s = serial->client().Search(parsed->predicate);
    auto p = parallel->client().Search(parsed->predicate);
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(s->files, p->files);
    EXPECT_EQ(s->nodes_queried, p->nodes_queried);
    // Bit-identical simulated latency, not just approximately equal.
    EXPECT_EQ(s->cost.seconds(), p->cost.seconds());
  }
}

TEST(ParallelSearchTest, SegmentedModeIsBitIdenticalAcrossExecutionModes) {
  // Snapshot searches against immutable segments have no execution-order
  // freedom to hide in either: serial and parallel engines must agree on
  // results AND simulated costs with the segmented index on, across
  // staged-overlay reads, seals, and merges.
  auto build = [](bool parallel) {
    ClusterConfig cfg = MakeConfig(parallel);
    cfg.segmented_index = true;
    auto cluster = std::make_unique<PropellerCluster>(cfg);
    EXPECT_TRUE(
        cluster->client()
            .CreateIndex({"by_size", index::IndexType::kBTree, {"size"}})
            .ok());
    EXPECT_TRUE(cluster->client()
                    .BatchUpdate(workload::SyntheticRows(1, kBaseFiles, Spec()),
                                 cluster->now())
                    .ok());
    return cluster;
  };
  auto serial = build(false);
  auto parallel = build(true);

  auto parsed = ParseQuery(kQuery, 1'000'000);
  ASSERT_TRUE(parsed.ok());
  auto step = [&](PropellerCluster& cluster, int round) {
    if (round > 0) {
      // Fresh updates each round: searches overlay the memtable, then the
      // commit-timeout tick seals a new segment (and eventually merges).
      EXPECT_TRUE(cluster.client()
                      .BatchUpdate(workload::SyntheticRows(
                                       kBaseFiles + round * kExtraFiles + 1,
                                       kExtraFiles, Spec()),
                                   cluster.now())
                      .ok());
      cluster.AdvanceTime(6.0);
    }
    return cluster.client().Search(parsed->predicate);
  };
  for (int round = 0; round < 4; ++round) {
    auto s = step(*serial, round);
    auto p = step(*parallel, round);
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(s->files, p->files) << "round " << round;
    EXPECT_EQ(s->nodes_queried, p->nodes_queried) << "round " << round;
    EXPECT_EQ(s->cost.seconds(), p->cost.seconds()) << "round " << round;
  }
}

TEST(ParallelSearchTest, DefaultRetryPolicyIsCostNeutralWithoutFaults) {
  // Regression for the resilience layer: with no fault plan installed and
  // the retry policy at its defaults, every result and simulated cost must
  // be bit-identical to a no-retry configuration — retries only engage on
  // kUnavailable, jitter is only drawn on an actual retry, and the
  // recovery journal is off by default.
  auto build = [](int max_attempts) {
    ClusterConfig cfg = MakeConfig(false);
    cfg.client.retry.max_attempts = max_attempts;
    auto cluster = std::make_unique<PropellerCluster>(cfg);
    EXPECT_TRUE(
        cluster->client()
            .CreateIndex({"by_size", index::IndexType::kBTree, {"size"}})
            .ok());
    auto load = cluster->client().BatchUpdate(
        workload::SyntheticRows(1, kBaseFiles, Spec()), cluster->now());
    EXPECT_TRUE(load.ok());
    cluster->AdvanceTime(6.0);
    return std::make_pair(std::move(cluster), load->seconds());
  };
  auto [defaults, d_load] = build(ClientConfig{}.retry.max_attempts);
  auto [no_retry, nr_load] = build(1);
  EXPECT_EQ(d_load, nr_load);

  auto parsed = ParseQuery(kQuery, 1'000'000);
  ASSERT_TRUE(parsed.ok());
  for (int round = 0; round < 3; ++round) {
    auto d = defaults->client().Search(parsed->predicate);
    auto n = no_retry->client().Search(parsed->predicate);
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(d->files, n->files);
    EXPECT_EQ(d->cost.seconds(), n->cost.seconds());
    EXPECT_FALSE(d->partial);
  }
}

TEST(ParallelSearchTest, BatchUpdateCostsMatchSerialExactly) {
  auto serial = MakeLoadedCluster(false);
  auto parallel = MakeLoadedCluster(true);

  auto extra = workload::SyntheticRows(kBaseFiles + 1, kExtraFiles, Spec());
  auto s = serial->client().BatchUpdate(extra, serial->now());
  auto p = parallel->client().BatchUpdate(std::move(extra), parallel->now());
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(s->seconds(), p->seconds());
  EXPECT_EQ(SearchSet(serial->client()), SearchSet(parallel->client()));
}

TEST(ParallelSearchTest, ConcurrentClientsMatchSerialRun) {
  // SyntheticRows streams one RNG per call, so generate the extra rows once
  // and hand out slices — chunked regeneration would change the attributes.
  const std::vector<index::FileUpdate> extra_rows =
      workload::SyntheticRows(kBaseFiles + 1, kExtraFiles, Spec());

  // Serial reference: base + extra rows, fully committed.
  auto reference = MakeLoadedCluster(false);
  ASSERT_TRUE(
      reference->client().BatchUpdate(extra_rows, reference->now()).ok());
  reference->AdvanceTime(6.0);
  const std::set<index::FileId> expected_final = SearchSet(reference->client());

  // System under test: parallel engine, real threads.
  auto cluster = MakeLoadedCluster(true);
  const std::set<index::FileId> expected_base = SearchSet(cluster->client());
  ASSERT_TRUE(expected_base.size() < expected_final.size())
      << "extra rows must add matches or the test is vacuous";

  constexpr int kStagers = 2;
  constexpr int kSearchers = 3;
  constexpr int kSearchRounds = 8;
  // Every thread gets its own client; AddClient is not thread-safe, so
  // create them all up front.
  std::vector<PropellerClient*> stage_clients;
  std::vector<PropellerClient*> search_clients;
  for (int i = 0; i < kStagers; ++i) stage_clients.push_back(&cluster->AddClient());
  for (int i = 0; i < kSearchers; ++i)
    search_clients.push_back(&cluster->AddClient());

  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  const double stage_now = cluster->now();
  for (int t = 0; t < kStagers; ++t) {
    threads.emplace_back([&, t] {
      // Disjoint row slices so stagers never write the same file.
      const uint64_t slice = kExtraFiles / kStagers;
      const uint64_t begin = static_cast<uint64_t>(t) * slice;
      const uint64_t end =
          t == kStagers - 1 ? kExtraFiles : begin + slice;
      // Stage in several small batches to maximize interleaving.
      for (uint64_t off = begin; off < end; off += 100) {
        uint64_t n = std::min<uint64_t>(100, end - off);
        std::vector<index::FileUpdate> batch(
            extra_rows.begin() + static_cast<long>(off),
            extra_rows.begin() + static_cast<long>(off + n));
        auto r = stage_clients[t]->BatchUpdate(std::move(batch), stage_now);
        if (!r.ok()) ++violations;
      }
    });
  }
  for (int t = 0; t < kSearchers; ++t) {
    threads.emplace_back([&, t] {
      auto parsed = ParseQuery(kQuery, 1'000'000);
      for (int round = 0; round < kSearchRounds; ++round) {
        auto out = search_clients[t]->Search(parsed->predicate);
        if (!out.ok()) {
          ++violations;
          continue;
        }
        std::set<index::FileId> got(out->files.begin(), out->files.end());
        // Monotonic window: every base match is visible (base data is
        // committed and never deleted) and nothing outside the final set
        // can ever appear.
        if (!std::includes(got.begin(), got.end(), expected_base.begin(),
                           expected_base.end())) {
          ++violations;
        }
        if (!std::includes(expected_final.begin(), expected_final.end(),
                           got.begin(), got.end())) {
          ++violations;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(violations.load(), 0);

  // Quiesced, the parallel cluster must agree with the serial reference.
  cluster->AdvanceTime(6.0);
  EXPECT_EQ(SearchSet(cluster->client()), expected_final);
}

}  // namespace
}  // namespace propeller::core
