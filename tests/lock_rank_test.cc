// Runtime lock-rank deadlock detector (common/mutex.h).
//
// Covers: the rank table matching the DESIGN.md lock order, rank-ordered
// acquisition passing, inversions and equal-rank nesting aborting (death
// tests), the kUnranked exemption, shared (reader) acquisitions obeying
// ranks, out-of-order release, and CondVar keeping the rank stack
// consistent across a wait.
#include "common/mutex.h"

#include <gtest/gtest.h>

#include <thread>

namespace propeller {
namespace {

bool ChecksEnabled() { return PROPELLER_LOCK_RANK_CHECKS != 0; }

// The documented lock order (DESIGN.md "Lock ranks & static enforcement"),
// outermost first.  If this test fails, either the enum or the table
// drifted — fix whichever is wrong, in both places.
TEST(LockRankTableTest, MatchesDesignDocOrder) {
  const LockRank design_order[] = {
      LockRank::kClientCache,     // core::PropellerClient::cache_mu_
      LockRank::kMaster,          // core::MasterNode::mu_
      LockRank::kMasterLiveness,  // core::MasterNode::liveness_mu_
      LockRank::kMasterShard,     // core::MasterNode::Shard::mu_
      LockRank::kTransportRouting,// net::Transport::mu_
      LockRank::kFaultPlan,       // net::FaultPlan::mu_
      LockRank::kIndexNodeAdmission, // core::IndexNode::admission_mu_
      LockRank::kIndexNodeLease,  // core::IndexNode::lease_mu_
      LockRank::kIndexNodeGroups, // core::IndexNode::groups_mu_
      LockRank::kIndexNodeReplica,// core::IndexNode::replica_mu_
      LockRank::kGroupJournal,    // core::GroupJournal::mu_
      LockRank::kIndexGroupSeal,  // index::IndexGroup::seal_mu_
      LockRank::kIndexGroup,      // index::IndexGroup::mu_
      LockRank::kIndexGroupCache, // index::IndexGroup::cache_mu_
      LockRank::kIoContext,       // sim::IoContext::mu_
      LockRank::kThreadPool,      // ThreadPool::mu_
      LockRank::kMetricsRegistry, // obs::MetricsRegistry::mu_
      LockRank::kTracer,          // obs::Tracer::mu_
  };
  for (size_t i = 1; i < std::size(design_order); ++i) {
    EXPECT_LT(static_cast<int>(design_order[i - 1]),
              static_cast<int>(design_order[i]))
        << "rank order broken between " << LockRankName(design_order[i - 1])
        << " and " << LockRankName(design_order[i]);
  }
  EXPECT_EQ(static_cast<int>(LockRank::kUnranked), 0);
}

TEST(LockRankTableTest, NamesAreStable) {
  EXPECT_STREQ(LockRankName(LockRank::kMaster), "kMaster");
  EXPECT_STREQ(LockRankName(LockRank::kIndexGroup), "kIndexGroup");
  EXPECT_STREQ(LockRankName(LockRank::kClientCache), "kClientCache");
  EXPECT_STREQ(LockRankName(LockRank::kIndexGroupCache), "kIndexGroupCache");
  EXPECT_STREQ(LockRankName(LockRank::kIndexGroupSeal), "kIndexGroupSeal");
  EXPECT_STREQ(LockRankName(LockRank::kIndexNodeReplica), "kIndexNodeReplica");
  EXPECT_STREQ(LockRankName(LockRank::kIndexNodeAdmission),
               "kIndexNodeAdmission");
  EXPECT_STREQ(LockRankName(LockRank::kMasterLiveness), "kMasterLiveness");
  EXPECT_STREQ(LockRankName(LockRank::kMasterShard), "kMasterShard");
  EXPECT_STREQ(LockRankName(LockRank::kIndexNodeLease), "kIndexNodeLease");
  EXPECT_STREQ(LockRankName(LockRank::kUnranked), "kUnranked");
}

TEST(LockRankTest, OrderedAcquisitionPasses) {
  Mutex master(LockRank::kMaster, "master");
  SharedMutex groups(LockRank::kIndexNodeGroups, "groups");
  Mutex group(LockRank::kIndexGroup, "group");
  Mutex io(LockRank::kIoContext, "io");
  {
    // The deepest real chain in the cluster: master -> groups map ->
    // group -> io.
    MutexLock l1(master);
    ReaderMutexLock l2(groups);
    MutexLock l3(group);
    MutexLock l4(io);
    if (ChecksEnabled()) {
      EXPECT_EQ(lock_rank_internal::HeldRankedLocks(), 4);
    }
  }
  if (ChecksEnabled()) {
    EXPECT_EQ(lock_rank_internal::HeldRankedLocks(), 0);
  }
}

TEST(LockRankTest, ReacquireAfterReleasePasses) {
  Mutex group(LockRank::kIndexGroup, "group");
  Mutex io(LockRank::kIoContext, "io");
  // Sequential (non-nested) acquisitions never violate rank order.
  { MutexLock l(io); }
  { MutexLock l(group); }
  {
    MutexLock l(group);
    MutexLock l2(io);
  }
}

TEST(LockRankTest, OutOfOrderReleaseIsLegal) {
  if (!ChecksEnabled()) GTEST_SKIP() << "lock-rank checks compiled out";
  // Hand-over-hand: acquire A then B, release A before B.
  Mutex a(LockRank::kIndexGroup, "a");
  Mutex b(LockRank::kIoContext, "b");
  a.lock();
  b.lock();
  a.unlock();
  EXPECT_EQ(lock_rank_internal::HeldRankedLocks(), 1);
  b.unlock();
  EXPECT_EQ(lock_rank_internal::HeldRankedLocks(), 0);
}

TEST(LockRankTest, UnrankedLocksAreExempt) {
  Mutex test_only;  // default: kUnranked
  Mutex group(LockRank::kIndexGroup, "group");
  {
    // Ranked-under-unranked and unranked-under-ranked both pass; the
    // exemption is what lets test scaffolding wrap arbitrary calls.
    MutexLock l1(test_only);
    MutexLock l2(group);
    if (ChecksEnabled()) {
      EXPECT_EQ(lock_rank_internal::HeldRankedLocks(), 1);
    }
  }
  {
    MutexLock l1(group);
    MutexLock l2(test_only);
  }
}

TEST(LockRankTest, EachThreadHasItsOwnStack) {
  if (!ChecksEnabled()) GTEST_SKIP() << "lock-rank checks compiled out";
  // A worker thread starts with an empty held-lock stack even while this
  // thread holds a high-rank lock.
  Mutex tracer(LockRank::kTracer, "tracer");
  MutexLock hold(tracer);
  std::thread t([] {
    EXPECT_EQ(lock_rank_internal::HeldRankedLocks(), 0);
    Mutex master(LockRank::kMaster, "master");
    MutexLock l(master);  // would violate on the parent thread's stack
    EXPECT_EQ(lock_rank_internal::HeldRankedLocks(), 1);
  });
  t.join();
}

TEST(LockRankTest, TryLockRecordsTheRank) {
  if (!ChecksEnabled()) GTEST_SKIP() << "lock-rank checks compiled out";
  Mutex group(LockRank::kIndexGroup, "group");
  ASSERT_TRUE(group.try_lock());
  EXPECT_EQ(lock_rank_internal::HeldRankedLocks(), 1);
  group.unlock();
  EXPECT_EQ(lock_rank_internal::HeldRankedLocks(), 0);
}

TEST(LockRankTest, CondVarWaitKeepsRankStackConsistent) {
  if (!ChecksEnabled()) GTEST_SKIP() << "lock-rank checks compiled out";
  Mutex mu(LockRank::kThreadPool, "pool");
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    // Wait released and re-acquired mu through the rank-checked wrapper.
    EXPECT_EQ(lock_rank_internal::HeldRankedLocks(), 1);
  }
  waker.join();
  EXPECT_EQ(lock_rank_internal::HeldRankedLocks(), 0);
}

TEST(LockRankDeathTest, InversionAborts) {
  if (!ChecksEnabled()) GTEST_SKIP() << "lock-rank checks compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Taking the master lock while holding a group lock is the canonical
  // deadlock-in-waiting: another thread doing master -> group blocks
  // forever.  The detector must abort before blocking.
  EXPECT_DEATH(
      {
        Mutex group(LockRank::kIndexGroup, "group");
        Mutex master(LockRank::kMaster, "master");
        MutexLock l1(group);
        MutexLock l2(master);
      },
      "LOCK RANK VIOLATION");
}

TEST(LockRankDeathTest, ShardUnderClientCacheAborts) {
  if (!ChecksEnabled()) GTEST_SKIP() << "lock-rank checks compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The sharded master's per-shard mutexes sit above the client's cache
  // lock: a client callback that resolved placements while holding its
  // cache (cache -> RPC -> shard) would deadlock against the resolve path
  // proper, so taking the cache lock under a shard mutex must abort.
  EXPECT_DEATH(
      {
        Mutex shard(LockRank::kMasterShard, "shard");
        Mutex cache(LockRank::kClientCache, "cache");
        MutexLock l1(shard);
        MutexLock l2(cache);
      },
      "LOCK RANK VIOLATION");
}

TEST(LockRankDeathTest, EqualRankNestingAborts) {
  if (!ChecksEnabled()) GTEST_SKIP() << "lock-rank checks compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two distinct locks of the same class deadlock just as easily (thread 1:
  // A then B; thread 2: B then A), so equal ranks are rejected too — this
  // is exactly the "never acquire a second group's mutex" DESIGN.md rule.
  EXPECT_DEATH(
      {
        Mutex group_a(LockRank::kIndexGroup, "group_a");
        Mutex group_b(LockRank::kIndexGroup, "group_b");
        MutexLock l1(group_a);
        MutexLock l2(group_b);
      },
      "LOCK RANK VIOLATION");
}

TEST(LockRankDeathTest, SharedAcquisitionObeysRanks) {
  if (!ChecksEnabled()) GTEST_SKIP() << "lock-rank checks compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Reader locks still deadlock writers when taken out of order.
  EXPECT_DEATH(
      {
        Mutex group(LockRank::kIndexGroup, "group");
        SharedMutex groups(LockRank::kIndexNodeGroups, "groups");
        MutexLock l1(group);
        ReaderMutexLock l2(groups);
      },
      "LOCK RANK VIOLATION");
}

TEST(LockRankDeathTest, ViolationMessageNamesBothLocks) {
  if (!ChecksEnabled()) GTEST_SKIP() << "lock-rank checks compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The abort output must print the attempted lock and the held stack so
  // the inversion is diagnosable from the crash alone.
  EXPECT_DEATH(
      {
        Mutex io(LockRank::kIoContext, "IoContext::mu_");
        Mutex group(LockRank::kIndexGroup, "IndexGroup::mu_");
        MutexLock l1(io);
        MutexLock l2(group);
      },
      "acquiring IndexGroup::mu_.*IoContext::mu_ \\(rank 50");
}

}  // namespace
}  // namespace propeller
