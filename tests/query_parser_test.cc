#include "core/query_parser.h"

#include <gtest/gtest.h>

namespace propeller::core {
namespace {

using index::CmpOp;

constexpr int64_t kNow = 1'000'000;

TEST(QueryParserTest, PaperQueryOne) {
  // "size > 1GB & mtime < 1 day"
  auto q = ParseQuery("size>1g & mtime<1day", kNow);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->predicate.terms.size(), 2u);
  EXPECT_EQ(q->predicate.terms[0].attr, "size");
  EXPECT_EQ(q->predicate.terms[0].op, CmpOp::kGt);
  EXPECT_EQ(q->predicate.terms[0].value.as_int(), 1024LL * 1024 * 1024);
  // "modified < 1 day ago" flips around now.
  EXPECT_EQ(q->predicate.terms[1].attr, "mtime");
  EXPECT_EQ(q->predicate.terms[1].op, CmpOp::kGt);
  EXPECT_EQ(q->predicate.terms[1].value.as_int(), kNow - 86400);
}

TEST(QueryParserTest, PaperQueryTwo) {
  // keyword "firefox" & mtime < 1 week
  auto q = ParseQuery("keyword:firefox & mtime<1week", kNow);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->predicate.terms.size(), 2u);
  EXPECT_EQ(q->predicate.terms[0].attr, "path");
  EXPECT_EQ(q->predicate.terms[0].op, CmpOp::kContainsWord);
  EXPECT_EQ(q->predicate.terms[0].value.as_string(), "firefox");
  EXPECT_EQ(q->predicate.terms[1].value.as_int(), kNow - 7 * 86400);
}

TEST(QueryParserTest, QueryDirectoryForm) {
  auto q = ParseQuery("/foo/bar/?size>1m", kNow);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->directory, "/foo/bar");
  // size term + path-component term for the directory leaf.
  ASSERT_EQ(q->predicate.terms.size(), 2u);
  EXPECT_EQ(q->predicate.terms[0].value.as_int(), 1024 * 1024);
  EXPECT_EQ(q->predicate.terms[1].op, CmpOp::kContainsWord);
  EXPECT_EQ(q->predicate.terms[1].value.as_string(), "bar");
}

TEST(QueryParserTest, OperatorsAndSuffixes) {
  auto q = ParseQuery("size>=16m && uid=7 & score<0.5 & name=\"a b\"", kNow);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->predicate.terms.size(), 4u);
  EXPECT_EQ(q->predicate.terms[0].op, CmpOp::kGe);
  EXPECT_EQ(q->predicate.terms[0].value.as_int(), 16 * 1024 * 1024);
  EXPECT_EQ(q->predicate.terms[1].op, CmpOp::kEq);
  EXPECT_EQ(q->predicate.terms[2].value.as_double(), 0.5);
  EXPECT_EQ(q->predicate.terms[3].value.as_string(), "a b");
}

TEST(QueryParserTest, RejectsBadSyntax) {
  EXPECT_FALSE(ParseQuery("", kNow).ok());
  EXPECT_FALSE(ParseQuery("size", kNow).ok());
  EXPECT_FALSE(ParseQuery(">5", kNow).ok());
  EXPECT_FALSE(ParseQuery("size>", kNow).ok());
  EXPECT_FALSE(ParseQuery("keyword:", kNow).ok());
  EXPECT_FALSE(ParseQuery("mtime=1day", kNow).ok()) << "age needs an ordering op";
}

TEST(QueryParserTest, BareStringValue) {
  auto q = ParseQuery("owner=alice", kNow);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->predicate.terms[0].value.as_string(), "alice");
}

}  // namespace
}  // namespace propeller::core
