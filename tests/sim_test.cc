// Simulation substrate: cost algebra, disk model, IoContext, net model.
#include <gtest/gtest.h>

#include "sim/cost.h"
#include "sim/disk_model.h"
#include "sim/io_context.h"
#include "sim/net_model.h"

namespace propeller::sim {
namespace {

TEST(CostTest, Algebra) {
  Cost a(1.5), b(0.5);
  EXPECT_DOUBLE_EQ((a + b).seconds(), 2.0);
  EXPECT_DOUBLE_EQ((a * 3).seconds(), 4.5);
  a += b;
  EXPECT_DOUBLE_EQ(a.seconds(), 2.0);
  EXPECT_LT(b, a);
  EXPECT_DOUBLE_EQ(Cost(0.001).millis(), 1.0);
  EXPECT_DOUBLE_EQ(Cost(0.001).micros(), 1000.0);
}

TEST(CostTest, ParallelMaxTakesSlowestBranch) {
  EXPECT_DOUBLE_EQ(Cost::ParallelMax({Cost(1), Cost(5), Cost(3)}).seconds(), 5.0);
  EXPECT_DOUBLE_EQ(Cost::ParallelMax({}).seconds(), 0.0);
}

TEST(CostClockTest, Accumulates) {
  CostClock clock;
  clock.Advance(Cost(1));
  clock.Advance(Cost(2));
  EXPECT_DOUBLE_EQ(clock.total().seconds(), 3.0);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.total().seconds(), 0.0);
}

TEST(DiskModelTest, RandomAccessIncludesSeekAndRotation) {
  DiskModel disk;  // 8.5ms seek + 4.17ms rotation + 4KB transfer
  double ms = disk.RandomPageAccess().millis();
  EXPECT_GT(ms, 12.0);
  EXPECT_LT(ms, 14.0);
}

TEST(DiskModelTest, SequentialAmortizesSeek) {
  DiskModel disk;
  // 1000 sequential pages: one seek + bandwidth-bound transfer.
  double s = disk.SequentialPages(1000).seconds();
  EXPECT_LT(s, 0.06);
  EXPECT_GT(s, 0.04);  // ~4MB at 100MB/s + 12.7ms
  EXPECT_DOUBLE_EQ(disk.SequentialPages(0).seconds(), 0.0);
}

TEST(DiskModelTest, AppendHasNoSeek) {
  DiskModel disk;
  EXPECT_LT(disk.AppendBytes(4096).seconds(), 0.0001);
}

TEST(IoContextTest, CacheHitsAreCheapMissesAreNot) {
  IoContext io(IoParams{.disk = {}, .cache_pages = 16, .cache_hit_us = 2});
  PageStore store = io.CreateStore();
  double miss = store.Read(1).seconds();
  double hit = store.Read(1).seconds();
  EXPECT_GT(miss, 0.01);
  EXPECT_LT(hit, 1e-5);
  EXPECT_EQ(io.CacheStats().hits, 1u);
  EXPECT_EQ(io.CacheStats().misses, 1u);
}

TEST(IoContextTest, StoresAreIsolatedInCache) {
  IoContext io;
  PageStore a = io.CreateStore();
  PageStore b = io.CreateStore();
  a.Read(1);
  // Same page number, different store: still a miss.
  EXPECT_GT(b.Read(1).seconds(), 0.01);
}

TEST(IoContextTest, SequentialLoadWarmsCache) {
  IoContext io;
  PageStore store = io.CreateStore();
  double cold = store.SequentialLoad(100).seconds();
  double warm = store.SequentialLoad(100).seconds();
  EXPECT_GT(cold, warm * 10);
}

TEST(IoContextTest, InvalidateStoreForcesMisses) {
  IoContext io;
  PageStore store = io.CreateStore();
  store.Read(7);
  store.Invalidate();
  EXPECT_GT(store.Read(7).seconds(), 0.01);
}

TEST(IoContextTest, DropCachesClearsEverything) {
  IoContext io;
  PageStore store = io.CreateStore();
  store.Read(1);
  store.Read(2);
  EXPECT_EQ(io.CachedPages(), 2u);
  io.DropCaches();
  EXPECT_EQ(io.CachedPages(), 0u);
}

TEST(IoContextTest, CapacityZeroDisablesCaching) {
  IoContext io(IoParams{.disk = {}, .cache_pages = 0, .cache_hit_us = 2});
  PageStore store = io.CreateStore();
  store.Read(1);
  EXPECT_GT(store.Read(1).seconds(), 0.01) << "no cache -> always miss";
}

TEST(NetModelTest, LatencyPlusBandwidth) {
  NetModel net(NetParams{.latency_us = 100, .bandwidth_mb_per_s = 100});
  // 1 MB at 100 MB/s = 10ms + 0.1ms latency.
  EXPECT_NEAR(net.Send(1'000'000).millis(), 10.1, 0.01);
  // Round trip includes both directions.
  EXPECT_NEAR(net.RoundTrip(1'000'000, 0).millis(), 10.2, 0.01);
}

TEST(PageCacheStatsTest, HitRate) {
  PageCacheStats stats;
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.0);
  stats.hits = 3;
  stats.misses = 1;
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.75);
}

}  // namespace
}  // namespace propeller::sim
