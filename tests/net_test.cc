// Transport layer: routing, cost accounting, failure injection,
// concurrent-caller safety.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "net/fault.h"
#include "net/transport.h"

namespace propeller::net {
namespace {

class EchoHandler : public RpcHandler {
 public:
  Response Handle(const std::string& method, const std::string& payload) override {
    ++calls;
    last_method = method;
    if (method == "fail") return {Status::Internal("boom"), {}, sim::Cost(0.01)};
    return {Status::Ok(), payload + "!", sim::Cost(0.001)};
  }
  int calls = 0;
  std::string last_method;
};

TEST(TransportTest, CallRoutesAndEchoes) {
  Transport t;
  EchoHandler h;
  t.Register(7, &h);
  auto r = t.Call(1, 7, "ping", "hello");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.payload, "hello!");
  EXPECT_EQ(h.calls, 1);
  EXPECT_EQ(h.last_method, "ping");
}

TEST(TransportTest, UnknownNodeIsNotFound) {
  Transport t;
  auto r = t.Call(1, 99, "ping", "x");
  EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
}

TEST(TransportTest, HandlerErrorsPropagate) {
  Transport t;
  EchoHandler h;
  t.Register(7, &h);
  auto r = t.Call(1, 7, "fail", "x");
  EXPECT_EQ(r.status.code(), StatusCode::kInternal);
  // Cost still accounts the wasted round trip + server work.
  EXPECT_GT(r.cost.seconds(), 0.01);
}

TEST(TransportTest, RemoteCallsChargeNetworkLocalDoNot) {
  Transport t(sim::NetModel(sim::NetParams{.latency_us = 1000,
                                           .bandwidth_mb_per_s = 100}));
  EchoHandler h;
  t.Register(7, &h);
  auto remote = t.Call(1, 7, "ping", "x");
  auto local = t.Call(7, 7, "ping", "x");
  EXPECT_GT(remote.cost.seconds(), local.cost.seconds() + 0.0015)
      << "two 1ms sends expected on the remote path";
}

TEST(TransportTest, DownNodeUnavailableAndRecovers) {
  Transport t;
  EchoHandler h;
  t.Register(7, &h);
  t.SetNodeDown(7, true);
  EXPECT_TRUE(t.IsDown(7));
  EXPECT_EQ(t.Call(1, 7, "ping", "x").status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(h.calls, 0);
  t.SetNodeDown(7, false);
  EXPECT_TRUE(t.Call(1, 7, "ping", "x").status.ok());
}

TEST(TransportTest, TrafficCountersTrackRemoteMessages) {
  Transport t;
  EchoHandler h;
  t.Register(7, &h);
  uint64_t before = t.MessagesSent();
  t.Call(1, 7, "ping", std::string(1000, 'a'));
  EXPECT_EQ(t.MessagesSent(), before + 2);  // request + response
  EXPECT_GT(t.BytesSent(), 1000u);
  // Local calls do not count as traffic.
  uint64_t after = t.MessagesSent();
  t.Call(7, 7, "ping", "x");
  EXPECT_EQ(t.MessagesSent(), after);
}

TEST(TransportTest, FailedHandlerStillChargesRequestTransfer) {
  // Regression: an error reply must charge the full request transfer plus
  // the server-side work, not just whatever partial cost the response
  // struct carried.
  Transport t{sim::NetModel(
      sim::NetParams{.latency_us = 1000, .bandwidth_mb_per_s = 100})};
  EchoHandler h;
  t.Register(7, &h);

  const std::string request(10'000, 'r');
  auto fail = t.Call(1, 7, "fail", request);
  EXPECT_EQ(fail.status.code(), StatusCode::kInternal);
  sim::Cost request_transfer =
      t.net().Send(request.size() + std::string("fail").size() + 32);
  // Request transfer + 0.01s handler work must both be present.
  EXPECT_GE(fail.cost.seconds(), request_transfer.seconds() + 0.01);
  // The error travels back as a small status frame, not a payload.
  EXPECT_TRUE(fail.payload.empty());
  EXPECT_LT(fail.cost.seconds(),
            request_transfer.seconds() + 0.01 + t.net().Send(64).seconds());
}

TEST(TransportTest, ConcurrentCallersAccountAllTraffic) {
  Transport t;
  class CountingHandler : public RpcHandler {
   public:
    Response Handle(const std::string&, const std::string& payload) override {
      calls.fetch_add(1);
      return {Status::Ok(), payload, sim::Cost(0.001)};
    }
    std::atomic<int> calls{0};
  } counting;
  t.Register(7, &counting);

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t, &ok] {
      for (int c = 0; c < kCallsPerThread; ++c) {
        auto r = t.Call(1, 7, "ping", std::string(100, 'x'));
        if (r.status.ok()) ++ok;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), kThreads * kCallsPerThread);
  EXPECT_EQ(counting.calls.load(), kThreads * kCallsPerThread);
  // Two messages (request + response) per call, none lost to races.
  EXPECT_EQ(t.MessagesSent(),
            static_cast<uint64_t>(2 * kThreads * kCallsPerThread));
}

TEST(TransportTest, UnregisterStopsRouting) {
  Transport t;
  EchoHandler h;
  t.Register(7, &h);
  t.Unregister(7);
  EXPECT_EQ(t.Call(1, 7, "ping", "x").status.code(), StatusCode::kNotFound);
}

// Regression: the down set and the handler map live in one atomically
// swapped Routing snapshot.  Before that, Call() read them under separate
// lock acquisitions, so a concurrent Register/Unregister of an unrelated
// node could interleave between the down check and the handler lookup.
TEST(TransportTest, DownMarkSurvivesUnrelatedRoutingChanges) {
  Transport t;
  EchoHandler h7, h8, h9;
  t.Register(7, &h7);
  t.SetNodeDown(7, true);
  // Routing churn on other nodes must not resurrect node 7.
  t.Register(8, &h8);
  t.Register(9, &h9);
  t.Unregister(8);
  EXPECT_TRUE(t.IsDown(7));
  EXPECT_EQ(t.Call(1, 7, "ping", "x").status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(t.Call(1, 9, "ping", "x").status.ok());
}

TEST(TransportTest, DownBeforeRegisterStillUnavailable) {
  Transport t;
  // Marking a node down before its handler exists is legal (the master
  // does this when it declares a node dead during bring-up) and the down
  // state must win over NotFound once the handler appears.
  t.SetNodeDown(7, true);
  EXPECT_EQ(t.Call(1, 7, "ping", "x").status.code(), StatusCode::kUnavailable);
  EchoHandler h;
  t.Register(7, &h);
  EXPECT_EQ(t.Call(1, 7, "ping", "x").status.code(), StatusCode::kUnavailable);
  t.SetNodeDown(7, false);
  EXPECT_TRUE(t.Call(1, 7, "ping", "x").status.ok());
}

TEST(TransportTest, RoutingSnapshotConsistentUnderConcurrentMutation) {
  // Hammer Register/Unregister/SetNodeDown on one node while callers spin
  // on another.  Every call must land in exactly one of the three states a
  // consistent snapshot allows (ok / unavailable / not-found) — never a
  // crash or a torn read.
  Transport t;
  EchoHandler stable, churn;
  t.Register(1, &stable);
  t.Register(2, &stable);
  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    while (!stop.load()) {
      t.Register(3, &churn);
      t.SetNodeDown(3, true);
      t.SetNodeDown(3, false);
      t.Unregister(3);
    }
  });
  for (int i = 0; i < 2000; ++i) {
    auto r = t.Call(1, 2, "ping", "x");
    ASSERT_TRUE(r.status.ok()) << "stable route affected by churn";
    auto c = t.Call(1, 3, "ping", "x");
    ASSERT_TRUE(c.status.ok() || c.status.code() == StatusCode::kUnavailable ||
                c.status.code() == StatusCode::kNotFound);
  }
  stop.store(true);
  mutator.join();
}

// ---- fault injection ----

TEST(FaultPlanTest, SameSeedSameSchedule) {
  auto run = [](uint64_t seed) {
    FaultPlan plan(seed);
    plan.AddRule(FaultRule{.drop_prob = 0.2, .fail_prob = 0.2,
                           .delay_prob = 0.2, .delay_s = 0.5});
    std::string schedule;
    for (int i = 0; i < 200; ++i) {
      switch (plan.Decide(1, 7, "ping").action) {
        case FaultPlan::Action::kDrop: schedule += 'D'; break;
        case FaultPlan::Action::kFail: schedule += 'F'; break;
        case FaultPlan::Action::kDelay: schedule += 'd'; break;
        case FaultPlan::Action::kNone: schedule += '.'; break;
      }
    }
    return schedule;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43)) << "different seeds should diverge";
  // All three actions actually occur at these probabilities.
  std::string s = run(42);
  EXPECT_NE(s.find('D'), std::string::npos);
  EXPECT_NE(s.find('F'), std::string::npos);
  EXPECT_NE(s.find('d'), std::string::npos);
  EXPECT_NE(s.find('.'), std::string::npos);
}

TEST(FaultPlanTest, NonMatchingCallsConsumeNoRandomness) {
  // The schedule of matching calls must not shift when unrelated traffic
  // is interleaved: non-matching calls draw nothing.
  auto run = [](bool interleave) {
    FaultPlan plan(7);
    plan.AddRule(FaultRule{.method = "in.search", .drop_prob = 0.5});
    std::string schedule;
    for (int i = 0; i < 100; ++i) {
      if (interleave) (void)plan.Decide(1, 7, "mn.heartbeat");
      schedule += plan.Decide(1, 7, "in.search").action ==
                          FaultPlan::Action::kDrop
                      ? 'D'
                      : '.';
    }
    return schedule;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(TransportFaultTest, DropChargesRequestOnlyAndSkipsHandler) {
  Transport t(sim::NetModel(sim::NetParams{.latency_us = 1000,
                                           .bandwidth_mb_per_s = 100}));
  EchoHandler h;
  t.Register(7, &h);
  auto plan = std::make_shared<FaultPlan>(1);
  plan->AddRule(FaultRule{.drop_prob = 1.0});
  t.SetFaultPlan(plan);

  const std::string request(10'000, 'r');
  uint64_t messages_before = t.MessagesSent();
  auto r = t.Call(1, 7, "ping", request);
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(h.calls, 0) << "dropped request must not reach the handler";
  EXPECT_EQ(t.MessagesSent(), messages_before + 1) << "request only, no reply";
  // The caller is charged exactly the wasted request transfer.
  sim::Cost request_transfer =
      t.net().Send(request.size() + std::string("ping").size() + 32);
  EXPECT_DOUBLE_EQ(r.cost.seconds(), request_transfer.seconds());
  EXPECT_EQ(plan->counters().dropped, 1u);
}

TEST(TransportFaultTest, FailMatchesErrorPathAccounting) {
  // An injected failure must cost exactly what a real failed handler
  // costs on the wire: request transfer + a 32-byte status frame (minus
  // the handler work a real failure would add).
  Transport t(sim::NetModel(sim::NetParams{.latency_us = 1000,
                                           .bandwidth_mb_per_s = 100}));
  EchoHandler h;
  t.Register(7, &h);
  auto plan = std::make_shared<FaultPlan>(1);
  plan->AddRule(FaultRule{.fail_prob = 1.0});
  t.SetFaultPlan(plan);

  const std::string request(10'000, 'r');
  uint64_t messages_before = t.MessagesSent();
  auto r = t.Call(1, 7, "fail", request);
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(h.calls, 0);
  EXPECT_EQ(t.MessagesSent(), messages_before + 2);  // request + status frame
  sim::Cost expected =
      t.net().Send(request.size() + std::string("fail").size() + 32) +
      t.net().Send(32);
  EXPECT_DOUBLE_EQ(r.cost.seconds(), expected.seconds());
  EXPECT_EQ(plan->counters().failed, 1u);
}

TEST(TransportFaultTest, DelayRunsHandlerAndAddsLatency) {
  Transport t;
  EchoHandler h;
  t.Register(7, &h);

  auto clean = t.Call(1, 7, "ping", "x");
  ASSERT_TRUE(clean.status.ok());

  auto plan = std::make_shared<FaultPlan>(1);
  plan->AddRule(FaultRule{.delay_prob = 1.0, .delay_s = 0.25});
  t.SetFaultPlan(plan);
  auto delayed = t.Call(1, 7, "ping", "x");
  ASSERT_TRUE(delayed.status.ok());
  EXPECT_EQ(delayed.payload, "x!") << "delayed call still runs the handler";
  EXPECT_DOUBLE_EQ(delayed.cost.seconds(), clean.cost.seconds() + 0.25);
  EXPECT_EQ(plan->counters().delayed, 1u);
}

TEST(TransportFaultTest, LocalCallsNeverFault) {
  Transport t;
  EchoHandler h;
  t.Register(7, &h);
  auto plan = std::make_shared<FaultPlan>(1);
  plan->AddRule(FaultRule{.drop_prob = 1.0});
  t.SetFaultPlan(plan);
  EXPECT_TRUE(t.Call(7, 7, "ping", "x").status.ok());
  EXPECT_EQ(plan->counters().dropped, 0u);
}

TEST(TransportFaultTest, MaxTriggersHealsTheRule) {
  Transport t;
  EchoHandler h;
  t.Register(7, &h);
  auto plan = std::make_shared<FaultPlan>(1);
  plan->AddRule(FaultRule{.drop_prob = 1.0, .max_triggers = 3});
  t.SetFaultPlan(plan);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(t.Call(1, 7, "ping", "x").status.code(),
              StatusCode::kUnavailable);
  }
  EXPECT_TRUE(t.Call(1, 7, "ping", "x").status.ok())
      << "rule exhausted after 3 triggers";
  EXPECT_EQ(plan->counters().dropped, 3u);
}

TEST(TransportFaultTest, NodeSlownessStretchesHandlerCostOnAllMethods) {
  Transport t(sim::NetModel(sim::NetParams{.latency_us = 1000,
                                           .bandwidth_mb_per_s = 100}));
  EchoHandler h7, h8;
  t.Register(7, &h7);
  t.Register(8, &h8);

  auto clean = t.Call(1, 7, "ping", "x");
  ASSERT_TRUE(clean.status.ok());
  auto clean_other = t.Call(1, 7, "other", "x");  // longer method name on wire
  ASSERT_TRUE(clean_other.status.ok());

  auto plan = std::make_shared<FaultPlan>(1);
  plan->SetNodeSlowness(7, 10.0);
  t.SetFaultPlan(plan);

  // The handler's 0.001s of work stretches 10x; the wire transfers do not
  // (a straggler is slow to compute, not slow to be reached).
  auto slow = t.Call(1, 7, "ping", "x");
  ASSERT_TRUE(slow.status.ok());
  EXPECT_EQ(slow.payload, "x!") << "slowed call still runs the handler";
  EXPECT_DOUBLE_EQ(slow.cost.seconds(), clean.cost.seconds() + 9 * 0.001);
  // Every method of the slow node is affected — sustained, not per-call.
  auto slow2 = t.Call(1, 7, "other", "x");
  EXPECT_DOUBLE_EQ(slow2.cost.seconds(), clean_other.cost.seconds() + 9 * 0.001);
  EXPECT_EQ(plan->counters().slowed, 2u);
  // Other nodes are untouched, and no RNG draw was consumed (no rule ran).
  auto other = t.Call(1, 8, "ping", "x");
  EXPECT_DOUBLE_EQ(other.cost.seconds(), clean.cost.seconds());
  EXPECT_EQ(plan->counters().passed, 0u);

  // Slowness composes with a per-call delay rule: delay first, then the
  // handler stretch on top.
  plan->AddRule(FaultRule{.dst = 7, .delay_prob = 1.0, .delay_s = 0.25});
  auto both = t.Call(1, 7, "ping", "x");
  EXPECT_DOUBLE_EQ(both.cost.seconds(),
                   clean.cost.seconds() + 0.25 + 9 * 0.001);

  // multiplier <= 1 clears the entry.
  plan->ClearRules();
  plan->SetNodeSlowness(7, 1.0);
  auto healed = t.Call(1, 7, "ping", "x");
  EXPECT_DOUBLE_EQ(healed.cost.seconds(), clean.cost.seconds());

  // Local calls never fault — slowness included.
  plan->SetNodeSlowness(7, 10.0);
  auto local = t.Call(7, 7, "ping", "x");
  EXPECT_DOUBLE_EQ(local.cost.seconds(), 0.001);
}

TEST(TransportFaultTest, RuleScopingByDstAndMethod) {
  Transport t;
  EchoHandler h7, h8;
  t.Register(7, &h7);
  t.Register(8, &h8);
  auto plan = std::make_shared<FaultPlan>(1);
  plan->AddRule(FaultRule{.dst = 7, .method = "ping", .drop_prob = 1.0});
  t.SetFaultPlan(plan);
  EXPECT_EQ(t.Call(1, 7, "ping", "x").status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(t.Call(1, 8, "ping", "x").status.ok()) << "other dst unaffected";
  EXPECT_TRUE(t.Call(1, 7, "other", "x").status.ok())
      << "other method unaffected";
  // Clearing the plan heals everything.
  t.SetFaultPlan(nullptr);
  EXPECT_TRUE(t.Call(1, 7, "ping", "x").status.ok());
}

}  // namespace
}  // namespace propeller::net
