// Integration tests: client -> master -> index nodes, end to end.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cluster.h"
#include "trace/trace_gen.h"

namespace propeller::core {
namespace {

using index::AttrSet;
using index::AttrValue;
using index::CmpOp;

FileUpdate Upsert(FileId f, int64_t size, int64_t mtime, std::string path) {
  FileUpdate u;
  u.file = f;
  u.attrs.Set("size", AttrValue(size));
  u.attrs.Set("mtime", AttrValue(mtime));
  u.attrs.Set("path", AttrValue(std::move(path)));
  return u;
}

IndexSpec SizeIndex() { return {"by_size", index::IndexType::kBTree, {"size"}}; }

class ClusterTest : public ::testing::Test {
 protected:
  static ClusterConfig SmallConfig() {
    ClusterConfig cfg;
    cfg.index_nodes = 4;
    cfg.master.acg_policy.cluster_target = 10;
    cfg.master.acg_policy.split_threshold = 1000;
    cfg.master.acg_policy.merge_limit = 1000;
    return cfg;
  }

  ClusterTest() : cluster_(SmallConfig()) {}

  PropellerCluster cluster_;
};

TEST_F(ClusterTest, CreateIndexThenUpdateThenSearch) {
  ASSERT_TRUE(cluster_.client().CreateIndex(SizeIndex()).ok());

  std::vector<FileUpdate> updates;
  for (FileId f = 1; f <= 100; ++f) {
    updates.push_back(Upsert(f, static_cast<int64_t>(f * 10), 0, "/data/f"));
  }
  auto up = cluster_.client().BatchUpdate(std::move(updates), cluster_.now());
  ASSERT_TRUE(up.ok());

  Predicate p;
  p.And("size", CmpOp::kGt, AttrValue(int64_t{900}));
  auto r = cluster_.client().Search(p, "by_size");
  ASSERT_TRUE(r.ok());
  // sizes 910..1000 -> files 91..100.
  EXPECT_EQ(r->files.size(), 10u);
  EXPECT_EQ(r->files.front(), 91u);
  EXPECT_EQ(r->files.back(), 100u);
}

TEST_F(ClusterTest, SearchImmediatelyAfterUpdateIsConsistent) {
  // The heart of the paper: no crawl delay, recall is always 100%.
  ASSERT_TRUE(cluster_.client().CreateIndex(SizeIndex()).ok());
  for (int round = 0; round < 5; ++round) {
    std::vector<FileUpdate> updates;
    for (FileId f = 1; f <= 20; ++f) {
      FileId id = static_cast<FileId>(round) * 100 + f;
      updates.push_back(Upsert(id, 1'000'000 + round, 0, "/d/f"));
    }
    ASSERT_TRUE(cluster_.client().BatchUpdate(std::move(updates), cluster_.now()).ok());

    Predicate p;
    p.And("size", CmpOp::kGe, AttrValue(int64_t{1'000'000}));
    auto r = cluster_.client().Search(p, "by_size");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->files.size(), static_cast<size_t>((round + 1) * 20))
        << "stale search results in round " << round;
  }
}

TEST_F(ClusterTest, TimeoutCommitsStagedUpdates) {
  ASSERT_TRUE(cluster_.client().CreateIndex(SizeIndex()).ok());
  std::vector<FileUpdate> updates;
  for (FileId f = 1; f <= 10; ++f) updates.push_back(Upsert(f, 100, 0, "/d/f"));
  ASSERT_TRUE(cluster_.client().BatchUpdate(std::move(updates), cluster_.now()).ok());

  // Before the 5s timeout the updates are staged, not committed.
  uint64_t committed = 0;
  for (size_t i = 0; i < cluster_.num_index_nodes(); ++i) {
    for (auto& stat : cluster_.index_node(i).GroupStats()) committed += stat.files;
  }
  EXPECT_EQ(committed, 0u);

  cluster_.AdvanceTime(6.0);  // past the 5 s timeout
  committed = 0;
  for (size_t i = 0; i < cluster_.num_index_nodes(); ++i) {
    for (auto& stat : cluster_.index_node(i).GroupStats()) committed += stat.files;
  }
  EXPECT_EQ(committed, 10u);
}

TEST_F(ClusterTest, AcgFlushCoLocatesCausallyRelatedFiles) {
  ASSERT_TRUE(cluster_.client().CreateIndex(SizeIndex()).ok());

  fs::Vfs vfs;
  cluster_.client().AttachVfs(&vfs);
  // One process reads in.txt and writes out.txt -> same group.
  auto in = vfs.Open(1, "/app/in.txt", fs::OpenMode::kRead, true);
  auto out = vfs.Open(1, "/app/out.txt", fs::OpenMode::kWrite, true);
  ASSERT_TRUE(in.ok());
  ASSERT_TRUE(out.ok());
  vfs.Close(out->fd);
  vfs.Close(in->fd);
  ASSERT_TRUE(cluster_.client().FlushAcg().ok());

  FileId fin = vfs.ns().Stat("/app/in.txt")->id;
  FileId fout = vfs.ns().Stat("/app/out.txt")->id;
  const auto& mgr = cluster_.master().acg_manager();
  ASSERT_TRUE(mgr.GroupOf(fin).has_value());
  EXPECT_EQ(mgr.GroupOf(fin), mgr.GroupOf(fout));
  // The group exists on exactly one index node.
  auto node = cluster_.master().NodeOfGroup(*mgr.GroupOf(fin));
  ASSERT_TRUE(node.has_value());
}

TEST_F(ClusterTest, SplitMigratesFilesAndKeepsSearchComplete) {
  ClusterConfig cfg = SmallConfig();
  cfg.master.acg_policy.split_threshold = 50;
  cfg.master.acg_policy.cluster_target = 200;
  cfg.master.acg_policy.merge_limit = 200;
  PropellerCluster cluster(cfg);
  ASSERT_TRUE(cluster.client().CreateIndex(SizeIndex()).ok());

  // Build one big connected ACG of 120 files (two dense halves, weak link)
  // and index every file.
  acg::Acg delta;
  for (FileId i = 0; i < 60; ++i) {
    delta.AddEdge(1 + i, 1 + (i + 1) % 60, 10);
    delta.AddEdge(101 + i, 101 + (i + 1) % 60, 10);
  }
  delta.AddEdge(1, 101, 1);
  FlushAcgRequest freq;
  freq.delta = delta;
  auto call = cluster.transport().Call(PropellerCluster::kFirstClientId,
                                       PropellerCluster::kMasterId,
                                       "mn.flush_acg", Encode(freq));
  ASSERT_TRUE(call.status.ok());

  std::vector<FileUpdate> updates;
  for (FileId i = 0; i < 60; ++i) {
    updates.push_back(Upsert(1 + i, 100, 0, "/a/f"));
    updates.push_back(Upsert(101 + i, 100, 0, "/b/f"));
  }
  ASSERT_TRUE(cluster.client().BatchUpdate(std::move(updates), cluster.now()).ok());

  // The oversized group must have been split into two groups.
  const auto& mgr = cluster.master().acg_manager();
  EXPECT_NE(mgr.GroupOf(1), mgr.GroupOf(101));
  EXPECT_EQ(mgr.GroupOf(1), mgr.GroupOf(60));

  // And search still sees all 120 files exactly once.
  Predicate p;
  p.And("size", CmpOp::kGe, AttrValue(int64_t{100}));
  auto r = cluster.client().Search(p, "by_size");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->files.size(), 120u);
}

TEST_F(ClusterTest, LateMergeMigratesAcrossNodes) {
  ClusterConfig cfg = SmallConfig();
  cfg.master.acg_policy.cluster_target = 2;  // every pair becomes a group
  PropellerCluster cluster(cfg);
  ASSERT_TRUE(cluster.client().CreateIndex(SizeIndex()).ok());

  // Two independent pairs -> (likely) two groups on two nodes.
  acg::Acg d1;
  d1.AddEdge(1, 2);
  FlushAcgRequest f1;
  f1.delta = d1;
  cluster.transport().Call(100, 1, "mn.flush_acg", Encode(f1));
  acg::Acg d2;
  d2.AddEdge(10, 11);
  FlushAcgRequest f2;
  f2.delta = d2;
  cluster.transport().Call(100, 1, "mn.flush_acg", Encode(f2));

  std::vector<FileUpdate> updates;
  for (FileId f : {1, 2, 10, 11}) updates.push_back(Upsert(f, 50, 0, "/x/f"));
  ASSERT_TRUE(cluster.client().BatchUpdate(std::move(updates), cluster.now()).ok());

  const auto& mgr = cluster.master().acg_manager();
  ASSERT_NE(mgr.GroupOf(1), mgr.GroupOf(10));

  // A later causal edge joins the two groups; index data must follow.
  acg::Acg d3;
  d3.AddEdge(2, 10, 5);
  FlushAcgRequest f3;
  f3.delta = d3;
  auto call = cluster.transport().Call(100, 1, "mn.flush_acg", Encode(f3));
  ASSERT_TRUE(call.status.ok());
  EXPECT_EQ(mgr.GroupOf(1), mgr.GroupOf(10));

  Predicate p;
  p.And("size", CmpOp::kEq, AttrValue(int64_t{50}));
  auto r = cluster.client().Search(p, "by_size");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->files.size(), 4u) << "merge migration lost index data";
}

TEST_F(ClusterTest, IndexNodeCrashRecoversFromWal) {
  ASSERT_TRUE(cluster_.client().CreateIndex(SizeIndex()).ok());
  std::vector<FileUpdate> updates;
  for (FileId f = 1; f <= 30; ++f) updates.push_back(Upsert(f, 777, 0, "/d/f"));
  ASSERT_TRUE(cluster_.client().BatchUpdate(std::move(updates), cluster_.now()).ok());

  // Crash every index node before any commit happened.
  for (size_t i = 0; i < cluster_.num_index_nodes(); ++i) {
    ASSERT_TRUE(cluster_.index_node(i).CrashAndRecover().ok());
  }

  Predicate p;
  p.And("size", CmpOp::kEq, AttrValue(int64_t{777}));
  auto r = cluster_.client().Search(p, "by_size");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->files.size(), 30u) << "WAL recovery lost staged updates";
}

TEST_F(ClusterTest, MasterMetadataSnapshotRestore) {
  ASSERT_TRUE(cluster_.client().CreateIndex(SizeIndex()).ok());
  std::vector<FileUpdate> updates;
  for (FileId f = 1; f <= 25; ++f) updates.push_back(Upsert(f, 5, 0, "/d/f"));
  ASSERT_TRUE(cluster_.client().BatchUpdate(std::move(updates), cluster_.now()).ok());

  std::string image = cluster_.master().SnapshotMetadata();
  // Wipe + restore.
  ASSERT_TRUE(cluster_.master().RestoreMetadata(image).ok());

  // Routing still works: the same search answers fully.
  Predicate p;
  p.And("size", CmpOp::kEq, AttrValue(int64_t{5}));
  auto r = cluster_.client().Search(p, "by_size");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->files.size(), 25u);

  // And updates route to the same groups (no duplicate placement).
  const auto& mgr = cluster_.master().acg_manager();
  EXPECT_EQ(mgr.NumFiles(), 25u);
}

TEST_F(ClusterTest, DownNodeMakesSearchUnavailable) {
  ASSERT_TRUE(cluster_.client().CreateIndex(SizeIndex()).ok());
  std::vector<FileUpdate> updates;
  for (FileId f = 1; f <= 40; ++f) updates.push_back(Upsert(f, 9, 0, "/d/f"));
  ASSERT_TRUE(cluster_.client().BatchUpdate(std::move(updates), cluster_.now()).ok());

  // Find a node that actually holds groups and kill it.
  NodeId victim = 0;
  for (size_t i = 0; i < cluster_.num_index_nodes(); ++i) {
    if (cluster_.index_node(i).NumGroups() > 0) {
      victim = cluster_.index_node(i).id();
      break;
    }
  }
  ASSERT_NE(victim, 0u);
  cluster_.transport().SetNodeDown(victim, true);

  Predicate p;
  p.And("size", CmpOp::kEq, AttrValue(int64_t{9}));
  auto r = cluster_.client().Search(p, "by_size");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);

  // Bring it back: search works again.
  cluster_.transport().SetNodeDown(victim, false);
  auto r2 = cluster_.client().Search(p, "by_size");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->files.size(), 40u);
}

TEST_F(ClusterTest, NewGroupsAvoidDownNodes) {
  ASSERT_TRUE(cluster_.client().CreateIndex(SizeIndex()).ok());
  NodeId down = cluster_.index_node(0).id();
  cluster_.transport().SetNodeDown(down, true);

  std::vector<FileUpdate> updates;
  for (FileId f = 1; f <= 50; ++f) updates.push_back(Upsert(f, 1, 0, "/d/f"));
  ASSERT_TRUE(cluster_.client().BatchUpdate(std::move(updates), cluster_.now()).ok());
  EXPECT_EQ(cluster_.index_node(0).NumGroups(), 0u);

  cluster_.transport().SetNodeDown(down, false);
  Predicate p;
  p.And("size", CmpOp::kEq, AttrValue(int64_t{1}));
  auto r = cluster_.client().Search(p, "by_size");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->files.size(), 50u);
}

TEST_F(ClusterTest, UnknownIndexNameRejected) {
  auto r = cluster_.client().Search(Predicate{}, "nonexistent");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(ClusterTest, DuplicateIndexNameRejected) {
  ASSERT_TRUE(cluster_.client().CreateIndex(SizeIndex()).ok());
  auto again = cluster_.client().CreateIndex(SizeIndex());
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(ClusterTest, GroupsSpreadAcrossNodes) {
  ClusterConfig cfg = SmallConfig();
  cfg.master.acg_policy.cluster_target = 5;  // many small groups
  PropellerCluster cluster(cfg);
  ASSERT_TRUE(cluster.client().CreateIndex(SizeIndex()).ok());
  std::vector<FileUpdate> updates;
  for (FileId f = 1; f <= 200; ++f) updates.push_back(Upsert(f, 1, 0, "/d/f"));
  ASSERT_TRUE(cluster.client().BatchUpdate(std::move(updates), cluster.now()).ok());

  // Least-loaded placement must involve every node.
  for (size_t i = 0; i < cluster.num_index_nodes(); ++i) {
    EXPECT_GT(cluster.index_node(i).NumGroups(), 0u) << "node " << i << " idle";
  }
}

TEST_F(ClusterTest, MoreNodesReduceWarmSearchLatency) {
  // Table IV's mechanism: fan-out parallelism cuts per-search latency.
  auto run = [](int nodes) {
    ClusterConfig cfg = SmallConfig();
    cfg.index_nodes = nodes;
    cfg.master.acg_policy.cluster_target = 50;
    PropellerCluster cluster(cfg);
    EXPECT_TRUE(cluster.client().CreateIndex(SizeIndex()).ok());
    std::vector<FileUpdate> updates;
    for (FileId f = 1; f <= 2000; ++f) {
      updates.push_back(Upsert(f, static_cast<int64_t>(f), 0, "/d/f"));
    }
    EXPECT_TRUE(cluster.client().BatchUpdate(std::move(updates), cluster.now()).ok());
    Predicate p;
    p.And("size", CmpOp::kGt, AttrValue(int64_t{0}));
    // Warm it, then measure.
    (void)cluster.client().Search(p, "by_size");
    auto r = cluster.client().Search(p, "by_size");
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r->files.size(), 2000u);
    return r->cost.seconds();
  };
  double one = run(1);
  double eight = run(8);
  EXPECT_LT(eight, one) << "1 node: " << one << "s, 8 nodes: " << eight << "s";
}

TEST_F(ClusterTest, EndToEndTraceWorkflow) {
  // Full pipeline: trace -> vfs events -> ACG -> flush -> index -> search.
  // Group limits sized to the application (the paper's threshold is 50k;
  // GitProfile's ACG is one ~1000-file component).
  ClusterConfig cfg = SmallConfig();
  cfg.master.acg_policy.split_threshold = 5000;
  cfg.master.acg_policy.merge_limit = 5000;
  PropellerCluster cluster_(cfg);
  ASSERT_TRUE(cluster_.client().CreateIndex(SizeIndex()).ok());
  ASSERT_TRUE(cluster_.client()
                  .CreateIndex({"by_kw", index::IndexType::kKeyword, {"path"}})
                  .ok());

  fs::Vfs vfs;
  cluster_.client().AttachVfs(&vfs);
  trace::TraceGenerator gen(trace::GitProfile(), 3);
  ASSERT_TRUE(gen.Materialize(vfs).ok());
  uint64_t pid = 1;
  ASSERT_TRUE(gen.RunExecution(vfs, &pid).ok());
  ASSERT_TRUE(cluster_.client().FlushAcg().ok());

  // Index every file with its inode attributes.
  std::vector<FileUpdate> updates;
  vfs.ns().ForEachFile([&](const fs::FileStat& st) {
    FileUpdate u;
    u.file = st.id;
    u.attrs = st.ToAttrSet();
    updates.push_back(std::move(u));
  });
  const size_t total = updates.size();
  ASSERT_TRUE(cluster_.client().BatchUpdate(std::move(updates), cluster_.now()).ok());

  // All files have size >= 0.
  auto all = cluster_.client().SearchQuery("size>=0", vfs.now());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->files.size(), total);

  // Keyword search finds exactly the generated objects.
  auto objs = cluster_.client().SearchQuery("keyword:out", vfs.now());
  ASSERT_TRUE(objs.ok());
  EXPECT_EQ(objs->files.size(), 300u);  // GitProfile outputs

  // Causality grouping: intra-group weight should dwarf cross-group weight.
  const auto& mgr = cluster_.master().acg_manager();
  EXPECT_GT(mgr.IntraGroupWeight(), 0u);
  EXPECT_LT(mgr.CrossGroupWeight(), mgr.IntraGroupWeight() / 5);
}

}  // namespace
}  // namespace propeller::core
