// Client resilience: retry/backoff under injected faults, simulated
// deadlines, degraded partial-result search, and batch-update
// partial-failure semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "net/fault.h"

namespace propeller::core {
namespace {

using index::AttrValue;
using index::CmpOp;

FileUpdate Upsert(FileId f, int64_t size) {
  FileUpdate u;
  u.file = f;
  u.attrs.Set("size", AttrValue(size));
  return u;
}

IndexSpec SizeIndex() { return {"by_size", index::IndexType::kBTree, {"size"}}; }

ClusterConfig SmallConfig() {
  ClusterConfig cfg;
  cfg.index_nodes = 4;
  cfg.master.acg_policy.cluster_target = 10;
  cfg.master.acg_policy.split_threshold = 1000;
  cfg.master.acg_policy.merge_limit = 1000;
  return cfg;
}

// Seeds the cluster with `n` files of the given size and returns the
// all-files predicate.
Predicate Seed(PropellerCluster& cluster, int n, int64_t size = 7) {
  EXPECT_TRUE(cluster.client().CreateIndex(SizeIndex()).ok());
  std::vector<FileUpdate> updates;
  for (FileId f = 1; f <= static_cast<FileId>(n); ++f) {
    updates.push_back(Upsert(f, size));
  }
  EXPECT_TRUE(cluster.client().BatchUpdate(std::move(updates), cluster.now()).ok());
  Predicate p;
  p.And("size", CmpOp::kEq, AttrValue(size));
  return p;
}

// First index node that owns at least one group.
size_t NodeWithGroups(PropellerCluster& cluster) {
  for (size_t i = 0; i < cluster.num_index_nodes(); ++i) {
    if (cluster.index_node(i).NumGroups() > 0) return i;
  }
  ADD_FAILURE() << "no node holds any group";
  return 0;
}

TEST(ClientRetryTest, RetriesRecoverFromTransientDrops) {
  ClusterConfig cfg = SmallConfig();
  cfg.client.retry.max_attempts = 3;
  PropellerCluster cluster(cfg);
  Predicate p = Seed(cluster, 40);
  NodeId victim = cluster.index_node(NodeWithGroups(cluster)).id();

  auto clean = cluster.client().Search(p, "by_size");
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean->files.size(), 40u);

  // Drop the next two searches hitting the victim, then heal.  The third
  // attempt goes through, so the client succeeds without degrading.
  auto plan = std::make_shared<net::FaultPlan>(99);
  plan->AddRule(net::FaultRule{.dst = victim,
                               .method = "in.search",
                               .drop_prob = 1.0,
                               .max_triggers = 2});
  cluster.transport().SetFaultPlan(plan);

  auto retried = cluster.client().Search(p, "by_size");
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried->files, clean->files);
  EXPECT_FALSE(retried->partial);
  EXPECT_EQ(plan->counters().dropped, 2u);
  // The wasted attempts and backoff sleeps are on the simulated clock.
  EXPECT_GT(retried->cost.seconds(), clean->cost.seconds());
}

TEST(ClientRetryTest, StrictSearchErrorNamesTheFailedNode) {
  ClusterConfig cfg = SmallConfig();
  cfg.client.retry.max_attempts = 2;
  PropellerCluster cluster(cfg);
  Predicate p = Seed(cluster, 40);
  size_t victim = NodeWithGroups(cluster);
  NodeId victim_id = cluster.index_node(victim).id();
  cluster.KillIndexNode(victim);

  auto r = cluster.client().Search(p, "by_size");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(r.status().message().find(std::to_string(victim_id)),
            std::string::npos)
      << "error must name the failed node, got: " << r.status().ToString();
}

TEST(ClientRetryTest, PartialSearchReturnsSurvivorsAndNamesTheDead) {
  ClusterConfig cfg = SmallConfig();
  cfg.client.allow_partial_search = true;
  cfg.client.retry.max_attempts = 2;
  PropellerCluster cluster(cfg);
  Predicate p = Seed(cluster, 60);

  auto full = cluster.client().Search(p, "by_size");
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->files.size(), 60u);
  EXPECT_FALSE(full->partial);
  EXPECT_TRUE(full->node_errors.empty());

  size_t victim = NodeWithGroups(cluster);
  NodeId victim_id = cluster.index_node(victim).id();
  cluster.KillIndexNode(victim);

  auto degraded = cluster.client().Search(p, "by_size");
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->partial);
  ASSERT_EQ(degraded->node_errors.size(), 1u)
      << "exactly the unreachable node must be reported";
  EXPECT_EQ(degraded->node_errors[0].node, victim_id);
  EXPECT_EQ(degraded->node_errors[0].status.code(), StatusCode::kUnavailable);
  // Survivors' results are intact: everything except the victim's files.
  EXPECT_LT(degraded->files.size(), 60u);
  for (FileId f : degraded->files) {
    EXPECT_NE(std::find(full->files.begin(), full->files.end(), f),
              full->files.end());
  }

  // Node restored: full results and no degradation.
  cluster.ReviveIndexNode(victim);
  auto restored = cluster.client().Search(p, "by_size");
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(restored->partial);
  EXPECT_EQ(restored->files.size(), 60u);
}

TEST(ClientRetryTest, DeadlineBoundsRetrying) {
  ClusterConfig cfg = SmallConfig();
  cfg.client.retry.max_attempts = 10;
  cfg.client.retry.initial_backoff_s = 0.010;
  cfg.client.retry.request_deadline_s = 0.050;
  PropellerCluster cluster(cfg);
  Predicate p = Seed(cluster, 20);

  // Every search RPC is dropped: the deadline, not the attempt budget,
  // must end the retry loop.
  auto plan = std::make_shared<net::FaultPlan>(7);
  plan->AddRule(net::FaultRule{.method = "in.search", .drop_prob = 1.0});
  cluster.transport().SetFaultPlan(plan);

  auto r = cluster.client().Search(p, "by_size");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
  EXPECT_LT(plan->counters().dropped, 10u)
      << "deadline should fire before all 10 attempts burn";
}

TEST(ClientRetryTest, BatchUpdatePartialFailureNamesBuckets) {
  ClusterConfig cfg = SmallConfig();
  cfg.client.retry.max_attempts = 2;
  PropellerCluster cluster(cfg);
  ASSERT_TRUE(cluster.client().CreateIndex(SizeIndex()).ok());

  // First wave places groups on every node.
  std::vector<FileUpdate> wave1;
  for (FileId f = 1; f <= 80; ++f) wave1.push_back(Upsert(f, 1));
  ASSERT_TRUE(cluster.client().BatchUpdate(std::move(wave1), cluster.now()).ok());

  size_t victim = NodeWithGroups(cluster);
  NodeId victim_id = cluster.index_node(victim).id();
  cluster.KillIndexNode(victim);

  // Second wave re-touches every existing file: buckets for the dead
  // node fail, the rest must still land.
  std::vector<FileUpdate> wave2;
  for (FileId f = 1; f <= 80; ++f) wave2.push_back(Upsert(f, 2));
  auto up = cluster.client().BatchUpdate(std::move(wave2), cluster.now());
  ASSERT_FALSE(up.ok());
  EXPECT_EQ(up.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(up.status().message().find("partially failed"), std::string::npos);
  EXPECT_NE(up.status().message().find("node " + std::to_string(victim_id)),
            std::string::npos)
      << "error must name the failed bucket's node: " << up.status().ToString();
  EXPECT_NE(up.status().message().find("group"), std::string::npos);

  // The healthy nodes' buckets were shipped despite the failure.
  Predicate p;
  p.And("size", CmpOp::kEq, AttrValue(int64_t{2}));
  cluster.ReviveIndexNode(victim);
  auto r = cluster.client().Search(p, "by_size");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->files.size(), 0u) << "independent buckets must still land";
  EXPECT_LT(r->files.size(), 80u) << "the dead node's bucket cannot land";
}

TEST(ClientRetryTest, JitterIsDeterministicAcrossRuns) {
  // Two identical clusters with identical fault schedules must charge
  // bit-identical retry costs (stateless hash jitter, no shared RNG).
  auto run = [] {
    ClusterConfig cfg = SmallConfig();
    cfg.client.retry.max_attempts = 3;
    PropellerCluster cluster(cfg);
    Predicate p = Seed(cluster, 40);
    NodeId victim = cluster.index_node(NodeWithGroups(cluster)).id();
    auto plan = std::make_shared<net::FaultPlan>(5);
    plan->AddRule(net::FaultRule{.dst = victim,
                                 .method = "in.search",
                                 .drop_prob = 1.0,
                                 .max_triggers = 2});
    cluster.transport().SetFaultPlan(plan);
    auto r = cluster.client().Search(p, "by_size");
    EXPECT_TRUE(r.ok());
    return r->cost.seconds();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace propeller::core
