#!/usr/bin/env bash
# Repo lint pipeline: propeller-analyze, clang-tidy, the Clang
# thread-safety build, and the sanitizer preset matrix.
#
# Usage:
#   tools/lint.sh                 # static stages: analyze tidy tsa
#   tools/lint.sh --list          # print the available stages
#   tools/lint.sh analyze         # repo-invariant static analysis only
#   tools/lint.sh tidy            # clang-tidy only
#   tools/lint.sh tsa             # -Werror=thread-safety build only
#   tools/lint.sh asan|ubsan|tsan # one sanitizer build+test (via presets)
#   tools/lint.sh all             # analyze tidy tsa asan ubsan tsan
#
# Exit status is non-zero when any selected stage fails.  Stages that need
# a toolchain this machine lacks (clang, clang-tidy) are SKIPPED with a
# notice and do not fail the run — export PROPELLER_LINT_REQUIRE_CLANG=1
# to turn those skips into failures (CI images with clang installed).  The
# analyze stage needs only a C++20 compiler and is never skipped.
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT=$PWD
FAILED=0

note() { printf '==> %s\n' "$*"; }

skip_or_fail() {
  # $1 = missing tool, $2 = stage
  if [[ "${PROPELLER_LINT_REQUIRE_CLANG:-0}" != "0" ]]; then
    note "FAIL: stage '$2' requires $1 (PROPELLER_LINT_REQUIRE_CLANG=1)"
    FAILED=1
  else
    note "SKIP: stage '$2' needs $1, which is not installed"
  fi
}

stage_analyze() {
  # Dependency-free (no clang, no cmake configure needed): compile the
  # analyzer straight from its sources and run all three passes.  Reuses
  # the binary from an existing build/ when it is current.
  note "propeller-analyze (wire schema / lock order / determinism)"
  local bin=build/tools/analyze/propeller_analyze
  if [[ ! -x "$bin" || -n $(find tools/analyze -name '*.cc' -newer "$bin" \
        2>/dev/null) ]]; then
    bin=$(mktemp -d)/propeller_analyze
    note "compiling tools/analyze with ${CXX:-c++}"
    if ! "${CXX:-c++}" -std=c++20 -O2 -Wall -Wextra -Itools/analyze \
        tools/analyze/*.cc -o "$bin"; then
      note "FAIL: could not compile tools/analyze"
      FAILED=1
      return
    fi
  fi
  if ! "$bin" --root "$ROOT"; then
    note "FAIL: propeller-analyze reported findings"
    FAILED=1
  fi
}

stage_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    skip_or_fail clang-tidy tidy
    return
  fi
  note "clang-tidy over src/ (config: .clang-tidy, warnings are errors)"
  local build=build-lint-tidy
  cmake -B "$build" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # Every translation unit under src/; headers are covered through
  # HeaderFilterRegex.
  local files
  files=$(find src -name '*.cc' | sort)
  if ! clang-tidy --quiet -p "$build" --warnings-as-errors='*' $files; then
    note "FAIL: clang-tidy reported non-suppressed diagnostics"
    FAILED=1
  fi
}

stage_tsa() {
  local cxx=""
  if command -v clang++ >/dev/null 2>&1; then
    cxx=clang++
  else
    skip_or_fail clang++ tsa
    return
  fi
  note "Clang thread-safety build (-Werror=thread-safety)"
  local build=build-lint-tsa
  cmake -B "$build" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_COMPILER=$cxx \
      -DPROPELLER_THREAD_SAFETY_ANALYSIS=ON >/dev/null
  if ! cmake --build "$build" -j "$(nproc)"; then
    note "FAIL: thread-safety build failed"
    FAILED=1
  fi
}

stage_sanitizer() {
  # $1 = configure/build preset (asan / ubsan / tsan-fault);
  # $2.. = test presets to run against that build ($1 when omitted).
  local preset=$1
  shift
  local test_presets=("$@")
  [[ ${#test_presets[@]} -eq 0 ]] && test_presets=("$preset")
  note "sanitizer preset: $preset (configure + build + ctest: ${test_presets[*]})"
  if ! cmake --preset "$preset" >/dev/null; then
    note "FAIL: configure preset $preset"
    FAILED=1
    return
  fi
  if ! cmake --build --preset "$preset" -j "$(nproc)" >/dev/null; then
    note "FAIL: build preset $preset"
    FAILED=1
    return
  fi
  local tp
  for tp in "${test_presets[@]}"; do
    if ! ctest --preset "$tp"; then
      note "FAIL: test preset $tp"
      FAILED=1
    fi
  done
}

STAGES=("$@")
if [[ ${#STAGES[@]} -eq 1 && ${STAGES[0]} == --list ]]; then
  cat <<'EOF'
analyze  repo-invariant static analysis (wire schema, lock order,
         determinism) — needs only a C++20 compiler, never skipped
tidy     clang-tidy over src/ (.clang-tidy, warnings-as-errors)
tsa      Clang -Werror=thread-safety build
asan     AddressSanitizer preset build + ctest
ubsan    UndefinedBehaviorSanitizer preset build + ctest
tsan     ThreadSanitizer build + fault/segments/replication/load/master
         presets
all      analyze tidy tsa asan ubsan tsan
EOF
  exit 0
fi
if [[ ${#STAGES[@]} -eq 0 ]]; then
  STAGES=(analyze tidy tsa)
elif [[ ${#STAGES[@]} -eq 1 && ${STAGES[0]} == all ]]; then
  STAGES=(analyze tidy tsa asan ubsan tsan)
fi

for stage in "${STAGES[@]}"; do
  case "$stage" in
    analyze) stage_analyze ;;
    tidy) stage_tidy ;;
    tsa) stage_tsa ;;
    asan) stage_sanitizer asan ;;
    ubsan) stage_sanitizer ubsan ;;
    tsan) stage_sanitizer tsan-fault tsan-fault tsan-segments tsan-replication tsan-load tsan-master ;;
    *)
      note "unknown stage '$stage' (expected: tidy tsa asan ubsan tsan all)"
      exit 2
      ;;
  esac
done

if [[ $FAILED -ne 0 ]]; then
  note "lint: FAILED"
  exit 1
fi
note "lint: OK"
