#!/usr/bin/env bash
# Repo lint pipeline: clang-tidy, the Clang thread-safety build, and the
# sanitizer preset matrix.
#
# Usage:
#   tools/lint.sh                 # static stages: tidy tsa
#   tools/lint.sh tidy            # clang-tidy only
#   tools/lint.sh tsa             # -Werror=thread-safety build only
#   tools/lint.sh asan|ubsan|tsan # one sanitizer build+test (via presets)
#   tools/lint.sh all             # tidy tsa asan ubsan tsan
#
# Exit status is non-zero when any selected stage fails.  Stages that need
# a toolchain this machine lacks (clang, clang-tidy) are SKIPPED with a
# notice and do not fail the run — export PROPELLER_LINT_REQUIRE_CLANG=1
# to turn those skips into failures (CI images with clang installed).
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT=$PWD
FAILED=0

note() { printf '==> %s\n' "$*"; }

skip_or_fail() {
  # $1 = missing tool, $2 = stage
  if [[ "${PROPELLER_LINT_REQUIRE_CLANG:-0}" != "0" ]]; then
    note "FAIL: stage '$2' requires $1 (PROPELLER_LINT_REQUIRE_CLANG=1)"
    FAILED=1
  else
    note "SKIP: stage '$2' needs $1, which is not installed"
  fi
}

stage_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    skip_or_fail clang-tidy tidy
    return
  fi
  note "clang-tidy over src/ (config: .clang-tidy, warnings are errors)"
  local build=build-lint-tidy
  cmake -B "$build" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # Every translation unit under src/; headers are covered through
  # HeaderFilterRegex.
  local files
  files=$(find src -name '*.cc' | sort)
  if ! clang-tidy --quiet -p "$build" --warnings-as-errors='*' $files; then
    note "FAIL: clang-tidy reported non-suppressed diagnostics"
    FAILED=1
  fi
}

stage_tsa() {
  local cxx=""
  if command -v clang++ >/dev/null 2>&1; then
    cxx=clang++
  else
    skip_or_fail clang++ tsa
    return
  fi
  note "Clang thread-safety build (-Werror=thread-safety)"
  local build=build-lint-tsa
  cmake -B "$build" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_COMPILER=$cxx \
      -DPROPELLER_THREAD_SAFETY_ANALYSIS=ON >/dev/null
  if ! cmake --build "$build" -j "$(nproc)"; then
    note "FAIL: thread-safety build failed"
    FAILED=1
  fi
}

stage_sanitizer() {
  # $1 = configure/build preset (asan / ubsan / tsan-fault);
  # $2.. = test presets to run against that build ($1 when omitted).
  local preset=$1
  shift
  local test_presets=("$@")
  [[ ${#test_presets[@]} -eq 0 ]] && test_presets=("$preset")
  note "sanitizer preset: $preset (configure + build + ctest: ${test_presets[*]})"
  if ! cmake --preset "$preset" >/dev/null; then
    note "FAIL: configure preset $preset"
    FAILED=1
    return
  fi
  if ! cmake --build --preset "$preset" -j "$(nproc)" >/dev/null; then
    note "FAIL: build preset $preset"
    FAILED=1
    return
  fi
  local tp
  for tp in "${test_presets[@]}"; do
    if ! ctest --preset "$tp"; then
      note "FAIL: test preset $tp"
      FAILED=1
    fi
  done
}

STAGES=("$@")
if [[ ${#STAGES[@]} -eq 0 ]]; then
  STAGES=(tidy tsa)
elif [[ ${#STAGES[@]} -eq 1 && ${STAGES[0]} == all ]]; then
  STAGES=(tidy tsa asan ubsan tsan)
fi

for stage in "${STAGES[@]}"; do
  case "$stage" in
    tidy) stage_tidy ;;
    tsa) stage_tsa ;;
    asan) stage_sanitizer asan ;;
    ubsan) stage_sanitizer ubsan ;;
    tsan) stage_sanitizer tsan-fault tsan-fault tsan-segments tsan-replication tsan-load ;;
    *)
      note "unknown stage '$stage' (expected: tidy tsa asan ubsan tsan all)"
      exit 2
      ;;
  esac
done

if [[ $FAILED -ne 0 ]]; then
  note "lint: FAILED"
  exit 1
fi
note "lint: OK"
