// LockOrderPass: static companion to the runtime LockRank detector
// (common/mutex.h).  Four layers:
//
//   1. Declarations — every `propeller::Mutex` / `SharedMutex` member in
//      src/ must carry a LockRank (kUnranked scaffolding needs an
//      explicit analyze:allow(locks)).
//   2. Rank table — the DESIGN.md "Lock ranks" table, the LockRank enum,
//      and the actual declarations must agree pairwise: same rank names,
//      same numbers, same owning `Class::member`.  The pass effectively
//      re-derives the table from source and diffs it against the doc.
//   3. Acquisition graph — lexical MutexLock/ReaderMutexLock/
//      WriterMutexLock sites per function (RAII scope = enclosing brace),
//      plus one level of call propagation through typed members/locals:
//      holding A while acquiring B (directly or inside a called method)
//      is an edge A->B, and every edge must go strictly rank-upward.
//      The combined graph is also checked for cycles.
//   4. Coverage — edges whose ranks lock_rank_test.cc never mentions are
//      reported as notes: the runtime detector has never exercised them.
#include "analyze.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace propeller::analyze {

namespace {

struct MutexDecl {
  std::string class_name;
  std::string member;
  std::string rank;  // "kFoo" or "" when unranked
  std::string file;
  int line = 0;
};

std::string TrimStr(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// First word of a member statement after storage qualifiers.
std::string DeclTypeWord(const std::string& stmt) {
  size_t p = 0;
  for (;;) {
    while (p < stmt.size() && !IsIdentChar(stmt[p])) ++p;
    size_t e = p;
    while (e < stmt.size() && IsIdentChar(stmt[e])) ++e;
    std::string w = stmt.substr(p, e - p);
    if (w == "mutable" || w == "static" || w == "constexpr") {
      p = e;
      continue;
    }
    return w;
  }
}

// `LockRank::kX` referenced in a declaration/argument, "" if absent.
std::string RankRef(const std::string& s) {
  size_t p = s.find("LockRank::");
  if (p == std::string::npos) return "";
  size_t b = p + 10;
  size_t e = b;
  while (e < s.size() && IsIdentChar(s[e])) ++e;
  return s.substr(b, e - b);
}

// Parses `enum class LockRank` from common/mutex.h: name -> value.
std::map<std::string, int> ParseRanks(const SourceFile& f,
                                      std::vector<Finding>* findings) {
  std::map<std::string, int> ranks;
  size_t p = f.code.find("enum class LockRank");
  if (p == std::string::npos) {
    findings->push_back({f.path, 1, "locks",
                         "LockRank enum not found in common/mutex.h", true});
    return ranks;
  }
  size_t open = f.code.find('{', p);
  size_t close = MatchBracket(f.code, open);
  std::string body = f.code.substr(open + 1, close - open - 1);
  std::istringstream in(body);
  std::string entry;
  while (std::getline(in, entry, ',')) {
    size_t eq = entry.find('=');
    if (eq == std::string::npos) continue;
    std::string name = TrimStr(entry.substr(0, eq));
    ranks[name] = std::atoi(entry.c_str() + eq + 1);
  }
  return ranks;
}

struct TableRow {
  std::string rank;
  int value = 0;
  std::string qualified;  // e.g. core::MasterNode::mu_
  int line = 0;
};

// Parses `| `kX` (N) | `ns::Class::member_` ... |` rows from DESIGN.md.
std::vector<TableRow> ParseDesignTable(const std::string& path) {
  std::vector<TableRow> rows;
  std::ifstream in(path, std::ios::binary);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] != '|') continue;
    size_t t1 = line.find('`');
    if (t1 == std::string::npos) continue;
    size_t t2 = line.find('`', t1 + 1);
    if (t2 == std::string::npos) continue;
    std::string first = line.substr(t1 + 1, t2 - t1 - 1);
    if (first.empty() || first[0] != 'k') continue;
    size_t po = line.find('(', t2);
    if (po == std::string::npos) continue;
    size_t t3 = line.find('`', po);
    if (t3 == std::string::npos) continue;
    size_t t4 = line.find('`', t3 + 1);
    if (t4 == std::string::npos) continue;
    TableRow row;
    row.rank = first;
    row.value = std::atoi(line.c_str() + po + 1);
    row.qualified = line.substr(t3 + 1, t4 - t3 - 1);
    row.line = lineno;
    rows.push_back(std::move(row));
  }
  return rows;
}

// `Class::member` tail of a possibly namespace-qualified name.
std::string ClassMember(const std::string& qualified) {
  std::vector<std::string> parts;
  size_t b = 0;
  for (;;) {
    size_t sep = qualified.find("::", b);
    if (sep == std::string::npos) {
      parts.push_back(qualified.substr(b));
      break;
    }
    parts.push_back(qualified.substr(b, sep - b));
    b = sep + 2;
  }
  if (parts.size() < 2) return qualified;
  return parts[parts.size() - 2] + "::" + parts.back();
}

// Last class-like identifier in a type expression:
// `net::Transport*` -> Transport, `std::vector<index::IndexGroup*>` ->
// IndexGroup (useful for element access).
std::string LastTypeIdent(const std::string& type) {
  std::string last;
  size_t p = 0;
  while (p < type.size()) {
    if (!IsIdentChar(type[p])) {
      ++p;
      continue;
    }
    size_t e = p;
    while (e < type.size() && IsIdentChar(type[e])) ++e;
    std::string w = type.substr(p, e - p);
    p = e;
    if (w == "const" || w == "std" || w == "mutable" || w == "static") continue;
    last = w;
  }
  return last;
}

struct Acquisition {
  size_t off = 0;
  size_t scope_end = 0;
  std::string rank;
};

struct Edge {
  std::string from, to;
  std::string file;
  int line = 0;
  std::string via;  // description of the acquisition site
};

}  // namespace

void RunLockOrderPass(const Options& opt, const std::vector<SourceFile>& files,
                      std::vector<Finding>* findings) {
  // --- enum ranks -------------------------------------------------------
  const SourceFile* mutex_header = nullptr;
  for (const SourceFile& f : files) {
    if (f.path.size() >= 14 &&
        f.path.compare(f.path.size() - 14, 14, "common/mutex.h") == 0) {
      mutex_header = &f;
    }
  }
  if (mutex_header == nullptr) {
    findings->push_back({opt.src_dir, 1, "locks",
                         "common/mutex.h not found under src/", true});
    return;
  }
  std::map<std::string, int> ranks = ParseRanks(*mutex_header, findings);

  // --- declarations -----------------------------------------------------
  std::vector<MutexDecl> decls;
  // class -> member -> type word (for call/chain resolution).
  std::map<std::string, std::map<std::string, std::string>> member_types;
  std::vector<FileModel> models;
  models.reserve(files.size());
  for (const SourceFile& f : files) {
    models.push_back(BuildModel(f));
    const FileModel& model = models.back();
    for (const ClassInfo& ci : model.classes) {
      for (const MemberStmt& m : ci.members) {
        std::string type = DeclTypeWord(m.stmt);
        // `Mutex& mu_;` / `Mutex* mu_;` members (RAII guards, views) are
        // references to a mutex declared elsewhere, not declarations.
        bool by_ref = false;
        size_t tw = m.stmt.find(type);
        if (tw != std::string::npos) {
          size_t after = tw + type.size();
          while (after < m.stmt.size() &&
                 std::isspace(static_cast<unsigned char>(m.stmt[after]))) {
            ++after;
          }
          by_ref = after < m.stmt.size() &&
                   (m.stmt[after] == '&' || m.stmt[after] == '*');
        }
        if ((type == "Mutex" || type == "SharedMutex") && !by_ref) {
          // Anchor on the first token, not the raw statement start: the
          // statement may begin just after an access-specifier label on
          // the previous line, which would defeat same-line allows.
          size_t anchor = m.off;
          while (anchor < f.code.size() &&
                 std::isspace(static_cast<unsigned char>(f.code[anchor]))) {
            ++anchor;
          }
          MutexDecl d;
          d.class_name = ci.name;
          d.member = m.name;
          d.rank = RankRef(m.stmt);
          d.file = f.path;
          d.line = f.LineOf(anchor);
          if (d.rank.empty() || d.rank == "kUnranked") {
            if (!f.Allowed("locks", anchor)) {
              findings->push_back(
                  {f.path, d.line, "locks",
                   ci.name + "::" + m.name +
                       " is an unranked propeller mutex — assign a LockRank "
                       "(and add it to the DESIGN.md table) or annotate "
                       "analyze:allow(locks) for scaffolding",
                   true});
            }
            d.rank.clear();
          }
          decls.push_back(std::move(d));
        }
        if (!m.name.empty()) {
          // Record the member's type for resolving `x_->Method()` chains.
          size_t cut = m.stmt.find(m.name);
          if (cut != std::string::npos && cut > 0) {
            std::string ty = LastTypeIdent(m.stmt.substr(0, cut));
            if (!ty.empty()) member_types[ci.name][m.name] = ty;
          }
        }
      }
    }
  }

  // class -> mutex member -> rank.
  std::map<std::string, std::map<std::string, std::string>> mutex_of;
  for (const MutexDecl& d : decls) {
    if (!d.rank.empty()) mutex_of[d.class_name][d.member] = d.rank;
  }

  // --- DESIGN.md cross-check -------------------------------------------
  if (!opt.design.empty()) {
    std::vector<TableRow> table = ParseDesignTable(opt.design);
    if (table.empty()) {
      findings->push_back({opt.design, 1, "locks",
                           "lock-rank table not found in DESIGN.md", true});
    }
    std::set<std::string> table_members;
    for (const TableRow& row : table) {
      table_members.insert(ClassMember(row.qualified));
      auto rit = ranks.find(row.rank);
      if (rit == ranks.end()) {
        findings->push_back({opt.design, row.line, "locks",
                             "DESIGN.md table rank " + row.rank +
                                 " does not exist in the LockRank enum",
                             true});
        continue;
      }
      if (rit->second != row.value) {
        findings->push_back(
            {opt.design, row.line, "locks",
             "DESIGN.md says " + row.rank + " = " + std::to_string(row.value) +
                 " but the LockRank enum says " + std::to_string(rit->second),
             true});
      }
      bool found = false;
      for (const MutexDecl& d : decls) {
        if (d.class_name + "::" + d.member == ClassMember(row.qualified)) {
          found = true;
          if (d.rank != row.rank) {
            findings->push_back(
                {d.file, d.line, "locks",
                 d.class_name + "::" + d.member + " declares " +
                     (d.rank.empty() ? std::string("no rank") : d.rank) +
                     " but the DESIGN.md table assigns " + row.rank,
                 true});
          }
        }
      }
      if (!found) {
        findings->push_back({opt.design, row.line, "locks",
                             "DESIGN.md table lists " + row.qualified +
                                 " but no such mutex member exists in src/",
                             true});
      }
    }
    for (const MutexDecl& d : decls) {
      if (d.rank.empty()) continue;
      if (table_members.count(d.class_name + "::" + d.member) == 0u) {
        findings->push_back({d.file, d.line, "locks",
                             d.class_name + "::" + d.member + " (" + d.rank +
                                 ") is missing from the DESIGN.md rank table",
                             true});
      }
    }
  }

  // --- acquisition graph ------------------------------------------------
  // First: per-(class, method) direct acquisitions, for one level of call
  // propagation.
  struct FnInfo {
    const SourceFile* file = nullptr;
    const FunctionDef* fd = nullptr;
    std::vector<Acquisition> acqs;
    // local variable name -> class (from `Type* x = ...` declarations).
    std::map<std::string, std::string> locals;
  };
  std::vector<FnInfo> fns;
  std::map<std::string, std::vector<size_t>> by_method;  // Class::name -> idx

  auto resolve_chain = [&](const FnInfo& fn, const std::string& chain,
                           std::string* final_class,
                           std::string* final_member) -> bool {
    // Split on . and ->, dropping [...] subscripts.
    std::vector<std::string> segs;
    size_t i = 0;
    while (i < chain.size()) {
      if (!IsIdentChar(chain[i])) {
        ++i;
        continue;
      }
      size_t e = i;
      while (e < chain.size() && IsIdentChar(chain[e])) ++e;
      segs.push_back(chain.substr(i, e - i));
      i = e;
    }
    if (segs.empty()) return false;
    if (segs.front() == "this") segs.erase(segs.begin());
    if (segs.empty()) return false;
    std::string cls = fn.fd->class_name;
    for (size_t s = 0; s + 1 < segs.size(); ++s) {
      auto lit = fn.locals.find(segs[s]);
      if (s == 0 && lit != fn.locals.end()) {
        cls = lit->second;
        continue;
      }
      auto cit = member_types.find(cls);
      if (cit == member_types.end()) return false;
      auto mit = cit->second.find(segs[s]);
      if (mit == cit->second.end()) return false;
      cls = mit->second;
    }
    *final_class = cls;
    *final_member = segs.back();
    return true;
  };

  for (size_t fi = 0; fi < files.size(); ++fi) {
    const SourceFile& f = files[fi];
    const std::string& code = f.code;
    for (const FunctionDef& fd : models[fi].functions) {
      if (fd.body_end <= fd.body_begin) continue;
      FnInfo fn;
      fn.file = &f;
      fn.fd = &fd;
      // Local typed pointers/references: `index::IndexGroup* group = ...`.
      for (size_t i = fd.body_begin; i < fd.body_end; ++i) {
        if (code[i] != '*' && code[i] != '&') continue;
        size_t e = i + 1;
        while (e < fd.body_end &&
               std::isspace(static_cast<unsigned char>(code[e]))) {
          ++e;
        }
        size_t ne = e;
        while (ne < fd.body_end && IsIdentChar(code[ne])) ++ne;
        if (ne == e) continue;
        size_t after = ne;
        while (after < fd.body_end &&
               std::isspace(static_cast<unsigned char>(code[after]))) {
          ++after;
        }
        if (after >= fd.body_end || code[after] != '=') continue;
        if (after + 1 < fd.body_end && code[after + 1] == '=') continue;
        std::string type_chain = IdentBefore(code, i);
        if (type_chain.empty()) continue;
        // Walk the qualified chain back (ns::Type).
        size_t tb = i;
        while (tb > 0 &&
               (IsIdentChar(code[tb - 1]) || code[tb - 1] == ':')) {
          --tb;
        }
        std::string ty = LastTypeIdent(code.substr(tb, i - tb));
        if (!ty.empty()) fn.locals[code.substr(e, ne - e)] = ty;
      }
      // Lexical acquisitions with RAII scope = innermost enclosing brace.
      static const char* kGuards[] = {"MutexLock", "ReaderMutexLock",
                                      "WriterMutexLock"};
      for (size_t i = fd.body_begin; i < fd.body_end; ++i) {
        if (!IsIdentChar(code[i]) || (i > 0 && IsIdentChar(code[i - 1]))) {
          continue;
        }
        for (const char* g : kGuards) {
          if (!WordAt(code, i, g)) continue;
          size_t e = i + std::string(g).size();
          while (e < fd.body_end &&
                 std::isspace(static_cast<unsigned char>(code[e]))) {
            ++e;
          }
          size_t ve = e;
          while (ve < fd.body_end && IsIdentChar(code[ve])) ++ve;
          if (ve == e) break;  // not a guard declaration
          size_t open = ve;
          while (open < fd.body_end &&
                 std::isspace(static_cast<unsigned char>(code[open]))) {
            ++open;
          }
          if (open >= fd.body_end || code[open] != '(') break;
          size_t close = MatchBracket(code, open);
          std::string expr = code.substr(open + 1, close - open - 1);
          size_t comma = expr.find(',');
          if (comma != std::string::npos) expr = expr.substr(0, comma);
          std::string cls, member;
          if (resolve_chain(fn, expr, &cls, &member)) {
            auto cit = mutex_of.find(cls);
            if (cit != mutex_of.end()) {
              auto mit = cit->second.find(member);
              if (mit != cit->second.end()) {
                // Scope: innermost '{' containing i, within the body.
                size_t scope_end = fd.body_end;
                int depth = 0;
                for (size_t k = i; k-- > fd.body_begin;) {
                  if (code[k] == '}') ++depth;
                  if (code[k] == '{') {
                    if (depth == 0) {
                      scope_end = MatchBracket(code, k);
                      break;
                    }
                    --depth;
                  }
                }
                fn.acqs.push_back({i, scope_end, mit->second});
              }
            }
          }
          break;
        }
      }
      if (!fd.class_name.empty()) {
        by_method[fd.class_name + "::" + fd.name].push_back(fns.size());
      }
      fns.push_back(std::move(fn));
    }
  }

  // Direct nested edges + one level of call propagation.
  std::vector<Edge> edges;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const SourceFile& f, size_t off, std::string via) {
    edges.push_back({from, to, f.path, f.LineOf(off), std::move(via)});
  };
  for (const FnInfo& fn : fns) {
    const SourceFile& f = *fn.file;
    const std::string& code = f.code;
    const FunctionDef& fd = *fn.fd;
    for (const Acquisition& a : fn.acqs) {
      for (const Acquisition& b : fn.acqs) {
        if (b.off > a.off && b.off < a.scope_end) {
          add_edge(a.rank, b.rank, f, b.off,
                   fd.class_name + "::" + fd.name + " (nested)");
        }
      }
    }
    if (fn.acqs.empty()) continue;
    // Call sites while a lock is held.
    for (size_t i = fd.body_begin; i < fd.body_end; ++i) {
      if (code[i] != '(') continue;
      bool held_any = false;
      for (const Acquisition& a : fn.acqs) {
        held_any |= a.off < i && i < a.scope_end;
      }
      if (!held_any) continue;
      // Chain before the '(' — `journal_->Append`, `Handle`, ...
      size_t e = i;
      while (e > fd.body_begin &&
             std::isspace(static_cast<unsigned char>(code[e - 1]))) {
        --e;
      }
      size_t b = e;
      bool has_sep = false;
      for (;;) {
        size_t ident = b;
        while (ident > fd.body_begin && IsIdentChar(code[ident - 1])) --ident;
        if (ident == b) break;
        b = ident;
        if (b >= 2 && code.compare(b - 2, 2, "->") == 0) {
          b -= 2;
          has_sep = true;
          continue;
        }
        if (b >= 1 && code[b - 1] == '.') {
          b -= 1;
          has_sep = true;
          continue;
        }
        break;
      }
      if (b == e) continue;
      std::string chain = code.substr(b, e - b);
      std::string cls, method;
      if (!resolve_chain(fn, chain, &cls, &method)) continue;
      if (!has_sep && cls != fd.class_name) continue;  // bare call: self only
      auto mit = by_method.find(cls + "::" + method);
      if (mit == by_method.end()) continue;
      std::set<std::string> callee_ranks;
      for (size_t idx : mit->second) {
        for (const Acquisition& a : fns[idx].acqs) callee_ranks.insert(a.rank);
      }
      for (const Acquisition& a : fn.acqs) {
        if (!(a.off < i && i < a.scope_end)) continue;
        for (const std::string& r : callee_ranks) {
          add_edge(a.rank, r, f, i,
                   fd.class_name + "::" + fd.name + " -> " + cls +
                       "::" + method);
        }
      }
    }
  }

  // --- edge checks ------------------------------------------------------
  std::set<std::pair<std::string, std::string>> distinct;
  for (const Edge& e : edges) {
    if (!distinct.insert({e.from, e.to}).second) continue;
    auto fa = ranks.find(e.from);
    auto fb = ranks.find(e.to);
    if (fa == ranks.end() || fb == ranks.end()) continue;
    if (fa->second >= fb->second) {
      // Allow at the call/acquisition site.
      const SourceFile* sf = nullptr;
      for (const SourceFile& f : files) {
        if (f.path == e.file) sf = &f;
      }
      bool allowed = false;
      if (sf != nullptr && e.line > 0 &&
          static_cast<size_t>(e.line - 1) < sf->line_starts.size()) {
        allowed = sf->Allowed("locks", sf->line_starts[e.line - 1]);
      }
      if (!allowed) {
        findings->push_back(
            {e.file, e.line, "locks",
             "lock-order violation: " + e.from + " (" +
                 std::to_string(fa->second) + ") held while acquiring " +
                 e.to + " (" + std::to_string(fb->second) + ") via " + e.via +
                 " — ranks must be strictly increasing",
             true});
      }
    }
  }

  // Cycle check over the distinct edge graph (catches inversions even
  // between unranked... ranked pairs are already ordered; this reports
  // multi-edge cycles explicitly).
  {
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto& [from, to] : distinct) adj[from].push_back(to);
    std::set<std::string> done, path;
    std::vector<std::string> stack;
    std::function<bool(const std::string&)> dfs =
        [&](const std::string& n) -> bool {
      if (path.count(n) != 0u) {
        std::string cyc;
        for (const std::string& s : stack) cyc += s + " -> ";
        cyc += n;
        findings->push_back({opt.src_dir, 0, "locks",
                             "acquisition-order cycle: " + cyc, true});
        return true;
      }
      if (done.count(n) != 0u) return false;
      path.insert(n);
      stack.push_back(n);
      bool found = false;
      for (const std::string& m : adj[n]) found = found || dfs(m);
      stack.pop_back();
      path.erase(n);
      done.insert(n);
      return found;
    };
    for (const auto& [n, tos] : adj) {
      (void)tos;
      dfs(n);
    }
  }

  // --- runtime-detector coverage (notes) -------------------------------
  if (!opt.lock_test.empty()) {
    std::ifstream in(opt.lock_test, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      std::string test_text = buf.str();
      std::set<std::string> reported;
      for (const auto& [from, to] : distinct) {
        bool covered = test_text.find(from) != std::string::npos &&
                       test_text.find(to) != std::string::npos;
        if (covered) continue;
        if (!reported.insert(from + "->" + to).second) continue;
        findings->push_back(
            {opt.lock_test, 0, "locks",
             "static edge " + from + " -> " + to +
                 " is never exercised by lock_rank_test — the runtime "
                 "detector has not validated this ordering",
             false});
      }
    }
  }

  if (opt.verbose) {
    // Reconstructed rank table, for by-eye comparison with DESIGN.md.
    std::vector<const MutexDecl*> ranked;
    for (const MutexDecl& d : decls) {
      if (!d.rank.empty()) ranked.push_back(&d);
    }
    std::sort(ranked.begin(), ranked.end(),
              [&](const MutexDecl* a, const MutexDecl* b) {
                return ranks[a->rank] < ranks[b->rank];
              });
    std::string table = "reconstructed rank table:";
    for (const MutexDecl* d : ranked) {
      table += "\n    " + d->rank + " (" + std::to_string(ranks[d->rank]) +
               ") " + d->class_name + "::" + d->member;
    }
    table += "\n  distinct acquisition edges:";
    for (const auto& [from, to] : distinct) {
      table += "\n    " + from + " -> " + to;
    }
    findings->push_back({opt.src_dir, 0, "locks", table, false});
  }
}

}  // namespace propeller::analyze
