// propeller_analyze — repo-invariant static analysis (see analyze.h).
//
// Usage:
//   propeller_analyze [--root DIR] [--src DIR] [--pass NAME]...
//                     [--golden FILE] [--design FILE] [--lock-test FILE]
//                     [--update-golden] [--verbose] [--list]
//
// Defaults assume invocation from the repo root: --src src,
// --golden tools/analyze/wire_schema.golden, --design DESIGN.md,
// --lock-test tests/lock_rank_test.cc.  Exit code 0 iff no fatal
// findings (notes never fail the run).
#include "analyze.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: propeller_analyze [options]\n"
      "  --root DIR       repo root (prefixes every default path)\n"
      "  --src DIR        source tree to scan (default: src)\n"
      "  --pass NAME      run one pass (wire|locks|determinism); repeatable;\n"
      "                   default: all three\n"
      "  --golden FILE    wire schema snapshot (default:\n"
      "                   tools/analyze/wire_schema.golden)\n"
      "  --design FILE    DESIGN.md for the rank-table cross-check\n"
      "  --lock-test FILE lock_rank_test.cc for edge-coverage notes\n"
      "  --update-golden  rewrite the golden snapshot from source\n"
      "  --verbose        print the reconstructed rank table and edges\n"
      "  --list           list passes and exit\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace propeller::analyze;
  Options opt;
  std::string root;
  std::vector<std::string> passes;
  bool golden_set = false, design_set = false, lock_test_set = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = next();
    } else if (arg == "--src") {
      opt.src_dir = next();
    } else if (arg == "--pass") {
      passes.push_back(next());
    } else if (arg == "--golden") {
      opt.golden = next();
      golden_set = true;
    } else if (arg == "--design") {
      opt.design = next();
      design_set = true;
    } else if (arg == "--lock-test") {
      opt.lock_test = next();
      lock_test_set = true;
    } else if (arg == "--update-golden") {
      opt.update_golden = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--list") {
      std::printf("wire         encode/decode symmetry + golden schema\n");
      std::printf("locks        rank table + static acquisition order\n");
      std::printf("determinism  wall-clock/rand/unordered-iteration bans\n");
      return 0;
    } else {
      Usage();
      return 2;
    }
  }
  if (!root.empty() && root.back() != '/') root += '/';
  if (opt.src_dir.find('/') != 0) opt.src_dir = root + opt.src_dir;
  if (!golden_set) opt.golden = root + "tools/analyze/wire_schema.golden";
  if (!design_set) opt.design = root + "DESIGN.md";
  if (!lock_test_set) opt.lock_test = root + "tests/lock_rank_test.cc";
  if (passes.empty()) passes = {"wire", "locks", "determinism"};

  std::vector<std::string> paths = ListSources(opt.src_dir);
  if (paths.empty()) {
    std::fprintf(stderr, "propeller_analyze: no sources under %s\n",
                 opt.src_dir.c_str());
    return 2;
  }
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& p : paths) files.push_back(LoadSource(p));

  std::vector<Finding> findings;
  for (const std::string& pass : passes) {
    if (pass == "wire") {
      const SourceFile* proto = nullptr;
      for (const SourceFile& f : files) {
        if (f.path.size() >= 13 &&
            f.path.compare(f.path.size() - 13, 13, "core/proto.cc") == 0) {
          proto = &f;
        }
      }
      if (proto == nullptr) {
        std::fprintf(stderr,
                     "propeller_analyze: core/proto.cc not found under %s\n",
                     opt.src_dir.c_str());
        return 2;
      }
      RunWireSchemaPass(opt, *proto, &findings);
    } else if (pass == "locks") {
      RunLockOrderPass(opt, files, &findings);
    } else if (pass == "determinism") {
      RunDeterminismPass(opt, files, &findings);
    } else {
      std::fprintf(stderr, "propeller_analyze: unknown pass '%s'\n",
                   pass.c_str());
      return 2;
    }
  }

  int fatal = 0;
  for (const Finding& f : findings) {
    std::fprintf(stderr, "%s:%d: [%s]%s %s\n", f.file.c_str(), f.line,
                 f.pass.c_str(), f.fatal ? "" : " note:", f.message.c_str());
    if (f.fatal) ++fatal;
  }
  if (fatal != 0) {
    std::fprintf(stderr, "propeller_analyze: %d finding(s)\n", fatal);
    return 1;
  }
  if (opt.verbose || opt.update_golden) {
    std::fprintf(stderr, "propeller_analyze: clean (%zu files, %zu passes)\n",
                 files.size(), passes.size());
  }
  return 0;
}
