// WireSchemaPass: recovers the wire format of every message in
// src/core/proto.cc from the Put*/Get* call sequences of its
// Serialize/Deserialize pair, then checks
//
//   1. encode/decode symmetry — both sides agree on field order, widths,
//      repetition, and optionality;
//   2. trailing-optional discipline — no required field may follow an
//      optional one (optional sections only ever extend the tail, guarded
//      by remaining-bytes checks), and conditional encodes must be
//      prefix-compatible across branches;
//   3. the golden snapshot — the recovered schema must match
//      tools/analyze/wire_schema.golden field for field, so any wire
//      change is an explicit, reviewed diff.  Appending `opt` fields is
//      the only legal evolution; anything else is wire-breaking.
//
// The extractor understands the idioms proto.cc restricts itself to:
// straight-line Put/Get calls, counted and range-for loops, if/else-if
// trailing sections, `if (r.AtEnd()) return` guards, free helper
// functions (PutTrailingEpoch & co), PROPELLER_RETURN_IF_ERROR, and
// nested `x.Serialize(w)` / `T::Deserialize(r, x)` messages.
#include "analyze.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

namespace propeller::analyze {

namespace {

struct Op {
  enum Kind { kField, kMsg };
  Kind kind = kField;
  std::string type;  // u8/u32/u64/i64/double/string, or the message class
  std::string name;
  bool repeated = false;
  bool optional = false;
};

std::string Describe(const Op& op) {
  std::string s;
  if (op.optional) s += "opt ";
  if (op.repeated) s += "rep ";
  if (op.kind == Op::kMsg) s += "msg ";
  s += op.type.empty() ? "?" : op.type;
  if (!op.name.empty()) s += " " + op.name;
  return s;
}

// kind/type/repetition compatibility (names and optionality don't matter
// for branch-prefix checks; empty message types match anything).
bool Compatible(const Op& a, const Op& b) {
  if (a.kind != b.kind || a.repeated != b.repeated) return false;
  if (a.kind == Op::kMsg && (a.type.empty() || b.type.empty())) return true;
  return a.type == b.type;
}

struct SeqResult {
  std::vector<Op> ops;
  bool returns = false;  // every path through the block returns
};

std::string TrimStr(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// Cleans a field-name expression: drops casts, `out.` prefixes, ternary
// tails, and whitespace.  `static_cast<uint32_t>(files.size())` ->
// `files.size()`, `out.epoch` -> `epoch`, `drop_group ? 1 : 0` ->
// `drop_group`.
std::string CleanName(std::string s) {
  s = TrimStr(s);
  size_t q = s.find('?');
  if (q != std::string::npos) s = TrimStr(s.substr(0, q));
  const std::string kCast = "static_cast<";
  if (s.compare(0, kCast.size(), kCast) == 0) {
    size_t open = s.find('(');
    if (open != std::string::npos) {
      size_t close = MatchBracket(s, open);
      s = s.substr(open + 1, close - open - 1);
    }
  }
  std::string out;
  for (char c : s) {
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') out.push_back(c);
  }
  if (out.compare(0, 4, "out.") == 0) out = out.substr(4);
  return out;
}

// Splits a parameter/argument list on top-level commas.
std::vector<std::string> SplitTop(const std::string& s) {
  std::vector<std::string> out;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(TrimStr(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  std::string last = TrimStr(s.substr(start));
  if (!last.empty()) out.push_back(last);
  return out;
}

std::string LastComponent(const std::string& chain) {
  size_t sep = chain.rfind("::");
  return sep == std::string::npos ? chain : chain.substr(sep + 2);
}

class Extractor {
 public:
  Extractor(const SourceFile& f, const FileModel& model,
            std::vector<Finding>* findings)
      : f_(f), findings_(findings) {
    for (const FunctionDef& fd : model.functions) {
      if (fd.class_name.empty() &&
          (fd.params.find("BinaryWriter") != std::string::npos ||
           fd.params.find("BinaryReader") != std::string::npos)) {
        helpers_[fd.name] = &fd;
      }
    }
  }

  bool IsHelper(const std::string& name) const {
    return helpers_.count(name) != 0u;
  }

  // Ops of a message Serialize/Deserialize function.
  SeqResult Parse(const FunctionDef& fd) {
    Renames renames;
    return ParseBlock(fd.body_begin, fd.body_end, renames);
  }

  // Ops of a helper, with formal-parameter names substituted by the
  // call-site argument expressions.
  std::vector<Op> ExpandHelper(const std::string& name,
                               const std::string& args) {
    const FunctionDef* fd = helpers_.at(name);
    auto it = helper_cache_.find(name);
    if (it == helper_cache_.end()) {
      Renames renames;
      it = helper_cache_.emplace(name, ParseBlock(fd->body_begin, fd->body_end,
                                                 renames))
               .first;
    }
    std::vector<std::string> formals;
    for (const std::string& p : SplitTop(fd->params)) {
      size_t e = p.size();
      std::string ident = IdentBefore(p, e);
      formals.push_back(ident);
    }
    std::vector<std::string> actuals = SplitTop(args);
    std::vector<Op> ops = it->second.ops;
    for (Op& op : ops) {
      for (size_t i = 0; i < formals.size() && i < actuals.size(); ++i) {
        if (formals[i].empty()) continue;
        if (op.name == formals[i]) {
          op.name = CleanName(actuals[i]);
        } else if (op.name.compare(0, formals[i].size() + 1,
                                   formals[i] + ".") == 0) {
          op.name = CleanName(actuals[i]) + op.name.substr(formals[i].size());
        }
      }
    }
    return ops;
  }

 private:
  using Renames = std::vector<std::pair<std::string, std::string>>;

  void Report(size_t off, const std::string& msg) {
    if (f_.Allowed("wire", off)) return;
    findings_->push_back({f_.path, f_.LineOf(off), "wire", msg, true});
  }

  size_t SkipWs(size_t i, size_t end) const {
    while (i < end && std::isspace(static_cast<unsigned char>(f_.code[i]))) ++i;
    return i;
  }

  // Parses one branch body starting at `i` (either `{...}` or a single
  // statement up to `;`).  Returns past-the-end offset.
  size_t ParseBranch(size_t i, size_t end, const Renames& renames,
                     SeqResult* out) {
    i = SkipWs(i, end);
    if (i < end && f_.code[i] == '{') {
      size_t close = MatchBracket(f_.code, i);
      *out = ParseBlock(i + 1, close, renames);
      return close + 1;
    }
    // Single statement: up to the ';' at depth 0.
    size_t j = i;
    while (j < end) {
      char c = f_.code[j];
      if (c == '(' || c == '{' || c == '[') {
        j = MatchBracket(f_.code, j) + 1;
        continue;
      }
      if (c == ';') break;
      ++j;
    }
    *out = ParseBlock(i, std::min(j + 1, end), renames);
    return std::min(j + 1, end);
  }

  static void MarkOptional(std::vector<Op>& ops) {
    for (Op& op : ops) op.optional = true;
  }

  // Merges alternative branch sequences: every branch must be a prefix of
  // the longest one; the merge is the longest branch with every op
  // optional (unless there is exactly one alternative).
  std::vector<Op> MergeAlternatives(const std::vector<std::vector<Op>>& alts,
                                    size_t off) {
    size_t longest = 0;
    for (size_t i = 1; i < alts.size(); ++i) {
      if (alts[i].size() > alts[longest].size()) longest = i;
    }
    for (size_t i = 0; i < alts.size(); ++i) {
      if (i == longest) continue;
      bool ok = alts[i].size() <= alts[longest].size();
      for (size_t k = 0; ok && k < alts[i].size(); ++k) {
        ok = Compatible(alts[i][k], alts[longest][k]);
      }
      if (!ok) {
        Report(off,
               "conditional encode/decode branches are not prefix-compatible "
               "(trailing-optional discipline requires every branch to be a "
               "prefix of the longest one)");
      }
    }
    std::vector<Op> merged = alts[longest];
    bool all_same = true;
    for (const auto& a : alts) all_same = all_same && a.size() == merged.size();
    if (!all_same || alts.size() > 1) {
      // More than one distinct path: everything merged is conditional.
      bool identical = true;
      for (const auto& a : alts) identical = identical && a.size() == merged.size();
      if (!identical) MarkOptional(merged);
      else if (alts.size() > 1 && merged.size() > 0) {
        // Same length on every branch still means the values differ per
        // branch, but presence is unconditional only if k == 1.
        if (alts.size() > 1) {
          bool any_shorter = false;
          for (const auto& a : alts) any_shorter |= a.size() < merged.size();
          if (any_shorter) MarkOptional(merged);
        }
      }
    }
    // Presence is conditional whenever some alternative lacks the op.
    for (size_t k = 0; k < merged.size(); ++k) {
      for (const auto& a : alts) {
        if (k >= a.size()) merged[k].optional = true;
      }
    }
    return merged;
  }

  SeqResult ParseBlock(size_t begin, size_t end, const Renames& renames) {
    SeqResult result;
    size_t i = begin;
    while (i < end) {
      i = SkipWs(i, end);
      if (i >= end) break;
      char c = f_.code[i];
      if (c == ';' || c == '}') {
        ++i;
        continue;
      }
      if (c == '{') {  // bare scope
        size_t close = MatchBracket(f_.code, i);
        SeqResult sub = ParseBlock(i + 1, close, renames);
        for (Op& op : sub.ops) result.ops.push_back(op);
        if (sub.returns) {
          result.returns = true;
          return result;
        }
        i = close + 1;
        continue;
      }
      // Loops.
      if (WordAt(f_.code, i, "for") || WordAt(f_.code, i, "while")) {
        size_t open = f_.code.find('(', i);
        size_t close = MatchBracket(f_.code, open);
        std::string head = f_.code.substr(open + 1, close - open - 1);
        Renames sub_renames = renames;
        // Range-for: rename the loop variable to the container so field
        // names in the golden schema read as the struct member.
        int depth = 0;
        size_t colon = std::string::npos;
        for (size_t k = 0; k < head.size(); ++k) {
          char h = head[k];
          if (h == '(' || h == '[' || h == '{' || h == '<') ++depth;
          if (h == ')' || h == ']' || h == '}' || h == '>') --depth;
          if (h == ':' && depth == 0 &&
              (k + 1 >= head.size() || head[k + 1] != ':') &&
              (k == 0 || head[k - 1] != ':')) {
            colon = k;
            break;
          }
        }
        if (colon != std::string::npos) {
          std::string var = IdentBefore(head, colon);
          std::string container = CleanName(head.substr(colon + 1));
          if (!var.empty()) sub_renames.emplace_back(var, container);
        }
        SeqResult body;
        i = ParseBranch(close + 1, end, sub_renames, &body);
        for (Op& op : body.ops) {
          op.repeated = true;
          result.ops.push_back(op);
        }
        continue;
      }
      // Conditionals.
      if (WordAt(f_.code, i, "if")) {
        size_t cond_off = i;
        std::vector<SeqResult> branches;
        bool has_else = false;
        for (;;) {
          size_t open = f_.code.find('(', i);
          size_t close = MatchBracket(f_.code, open);
          SeqResult br;
          i = ParseBranch(close + 1, end, renames, &br);
          branches.push_back(std::move(br));
          size_t j = SkipWs(i, end);
          if (j < end && WordAt(f_.code, j, "else")) {
            j = SkipWs(j + 4, end);
            if (j < end && WordAt(f_.code, j, "if")) {
              i = j;
              continue;  // else-if: next condition
            }
            has_else = true;
            SeqResult br2;
            i = ParseBranch(j, end, renames, &br2);
            branches.push_back(std::move(br2));
          }
          break;
        }
        bool any_returns = false;
        for (const SeqResult& b : branches) any_returns |= b.returns;
        if (!any_returns) {
          std::vector<std::vector<Op>> alts;
          for (const SeqResult& b : branches) alts.push_back(b.ops);
          if (!has_else) alts.push_back({});
          std::vector<Op> merged = MergeAlternatives(alts, cond_off);
          for (Op& op : merged) result.ops.push_back(op);
          continue;
        }
        // Some branch returns: the remainder of the block is the
        // continuation of the non-returning paths.  Alternatives are
        // `branch` (terminated) vs `branch + rest`.
        SeqResult rest = ParseBlock(i, end, renames);
        std::vector<std::vector<Op>> alts;
        bool all_return = true;
        for (const SeqResult& b : branches) {
          std::vector<Op> path = b.ops;
          if (!b.returns) {
            path.insert(path.end(), rest.ops.begin(), rest.ops.end());
            all_return = all_return && rest.returns;
          }

          alts.push_back(std::move(path));
        }
        if (!has_else) {
          std::vector<Op> path = rest.ops;
          alts.push_back(std::move(path));
          all_return = all_return && rest.returns;
        }
        result.ops = [&] {
          std::vector<Op> merged = MergeAlternatives(alts, cond_off);
          std::vector<Op> out = result.ops;
          out.insert(out.end(), merged.begin(), merged.end());
          return out;
        }();
        result.returns = all_return;
        return result;
      }
      // switch: conservative — everything inside is conditional.
      if (WordAt(f_.code, i, "switch")) {
        size_t open = f_.code.find('(', i);
        size_t close = MatchBracket(f_.code, open);
        SeqResult body;
        i = ParseBranch(close + 1, end, renames, &body);
        for (Op& op : body.ops) {
          op.optional = true;
          result.ops.push_back(op);
        }
        continue;
      }
      // return <expr>;
      if (WordAt(f_.code, i, "return")) {
        size_t semi = StatementEnd(i, end);
        ExtractOps(i + 6, semi, renames, result.ops);
        result.returns = true;
        return result;
      }
      // Plain statement.
      size_t semi = StatementEnd(i, end);
      ExtractOps(i, semi, renames, result.ops);
      i = semi + 1;
    }
    return result;
  }

  size_t StatementEnd(size_t i, size_t end) const {
    size_t j = i;
    while (j < end) {
      char c = f_.code[j];
      if (c == '(' || c == '{' || c == '[') {
        j = MatchBracket(f_.code, j) + 1;
        continue;
      }
      if (c == ';') return j;
      ++j;
    }
    return end;
  }

  void ApplyRenames(const Renames& renames, Op& op) const {
    // Apply innermost (latest) renames first.
    for (auto it = renames.rbegin(); it != renames.rend(); ++it) {
      const auto& [var, container] = *it;
      if (op.name == var) {
        op.name = container;
      } else if (op.name.compare(0, var.size() + 1, var + ".") == 0) {
        op.name = container + op.name.substr(var.size());
      }
    }
  }

  // Scans one expression statement for Put/Get/Serialize/Deserialize and
  // helper calls, appending ops in call order.
  void ExtractOps(size_t begin, size_t end, const Renames& renames,
                  std::vector<Op>& out) {
    const std::string& code = f_.code;
    for (size_t i = begin; i < end; ++i) {
      // <obj>.Put<T>( / <obj>.Get<T>(
      if (code[i] == '.' && i + 4 < end &&
          (code.compare(i + 1, 3, "Put") == 0 ||
           code.compare(i + 1, 3, "Get") == 0) &&
          std::isupper(static_cast<unsigned char>(code[i + 4]))) {
        size_t tb = i + 4;
        size_t te = tb;
        while (te < end && IsIdentChar(code[te])) ++te;
        size_t open = SkipWsConst(te, end);
        if (open >= end || code[open] != '(') continue;
        size_t close = MatchBracket(code, open);
        std::string type = code.substr(tb, te - tb);
        std::string lower;
        if (type == "U8") lower = "u8";
        else if (type == "U32") lower = "u32";
        else if (type == "U64") lower = "u64";
        else if (type == "I64") lower = "i64";
        else if (type == "Double") lower = "double";
        else if (type == "String") lower = "string";
        else { i = close; continue; }  // Reserve, PutVector internals, ...
        Op op;
        op.kind = Op::kField;
        op.type = lower;
        std::vector<std::string> args =
            SplitTop(code.substr(open + 1, close - open - 1));
        if (!args.empty()) op.name = CleanName(args[0]);
        ApplyRenames(renames, op);
        out.push_back(std::move(op));
        i = close;
        continue;
      }
      // <obj>.Serialize(w)
      if (code[i] == '.' && WordAt(code, i + 1, "Serialize")) {
        size_t open = SkipWsConst(i + 10, end);
        if (open >= end || code[open] != '(') continue;
        size_t close = MatchBracket(code, open);
        Op op;
        op.kind = Op::kMsg;
        op.name = CleanName(ChainIdentBefore(i));
        ApplyRenames(renames, op);
        out.push_back(std::move(op));
        i = close;
        continue;
      }
      // <Type>::Deserialize(r, dest)
      if (code[i] == ':' && i + 1 < end && code[i + 1] == ':' &&
          WordAt(code, i + 2, "Deserialize")) {
        size_t open = SkipWsConst(i + 13, end);
        if (open >= end || code[open] != '(') continue;
        size_t close = MatchBracket(code, open);
        Op op;
        op.kind = Op::kMsg;
        op.type = LastComponent(ChainIdentBefore(i));
        std::vector<std::string> args =
            SplitTop(code.substr(open + 1, close - open - 1));
        if (args.size() >= 2) op.name = CleanName(args[1]);
        ApplyRenames(renames, op);
        out.push_back(std::move(op));
        i = close;
        continue;
      }
      // Helper call: Name(args) with Name a free put/get helper.
      if (IsIdentChar(code[i]) && (i == begin || !IsIdentChar(code[i - 1]))) {
        size_t e = i;
        while (e < end && IsIdentChar(code[e])) ++e;
        std::string name = code.substr(i, e - i);
        bool qualified = i >= 2 && code[i - 1] == ':' && code[i - 2] == ':';
        bool member = i >= 1 && (code[i - 1] == '.' ||
                                 (i >= 2 && code.compare(i - 2, 2, "->") == 0));
        size_t open = SkipWsConst(e, end);
        if (!qualified && !member && helpers_.count(name) != 0u &&
            open < end && code[open] == '(') {
          size_t close = MatchBracket(code, open);
          std::vector<Op> ops =
              ExpandHelper(name, code.substr(open + 1, close - open - 1));
          for (Op& op : ops) {
            ApplyRenames(renames, op);
            out.push_back(op);
          }
          i = close;
          continue;
        }
        i = e - 1;
        continue;
      }
    }
  }

  size_t SkipWsConst(size_t i, size_t end) const {
    while (i < end && std::isspace(static_cast<unsigned char>(f_.code[i]))) ++i;
    return i;
  }

  // The `a.b->c` / `ns::Type` chain ending at `pos` (exclusive).
  std::string ChainIdentBefore(size_t pos) const {
    const std::string& code = f_.code;
    size_t e = pos;
    size_t b = e;
    for (;;) {
      size_t ident = b;
      while (ident > 0 && IsIdentChar(code[ident - 1])) --ident;
      if (ident == b) break;
      b = ident;
      if (b >= 2 && code[b - 1] == ':' && code[b - 2] == ':') {
        b -= 2;
        continue;
      }
      if (b >= 1 && code[b - 1] == '.') {
        b -= 1;
        continue;
      }
      if (b >= 2 && code.compare(b - 2, 2, "->") == 0) {
        b -= 2;
        continue;
      }
      break;
    }
    return code.substr(b, e - b);
  }

  const SourceFile& f_;
  std::vector<Finding>* findings_;
  std::map<std::string, const FunctionDef*> helpers_;
  std::map<std::string, SeqResult> helper_cache_;
};

// Flags required-after-optional violations within one flattened sequence.
void CheckDiscipline(const SourceFile& f, const FunctionDef& fd,
                     const std::vector<Op>& ops,
                     std::vector<Finding>* findings) {
  bool saw_optional = false;
  for (const Op& op : ops) {
    if (op.optional) {
      saw_optional = true;
    } else if (saw_optional) {
      if (f.Allowed("wire", fd.sig_off)) return;
      findings->push_back(
          {f.path, f.LineOf(fd.sig_off), "wire",
           fd.class_name + "::" + fd.name + ": required field '" +
               Describe(op) +
               "' follows an optional one — new wire fields must be "
               "appended as trailing optionals, never inserted mid-message",
           true});
      return;
    }
  }
}

struct Schema {
  // message name -> field lines (schema text without indentation).
  std::map<std::string, std::vector<std::string>> messages;
};

std::string RenderSchema(const Schema& s) {
  std::ostringstream out;
  out << "# propeller wire schema snapshot — generated by propeller_analyze "
         "--update-golden.\n";
  out << "# Field order IS the wire format.  Legal evolution: append `opt` "
         "fields only;\n";
  out << "# deleting, reordering, retyping, or inserting fields is "
         "wire-breaking.\n";
  for (const auto& [name, fields] : s.messages) {
    out << "message " << name << "\n";
    for (const std::string& fld : fields) out << "  " << fld << "\n";
  }
  return out.str();
}

bool ParseGolden(const std::string& text, Schema* out) {
  std::istringstream in(text);
  std::string line;
  std::string current;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.compare(0, 8, "message ") == 0) {
      current = TrimStr(line.substr(8));
      out->messages[current];  // messages may be field-less
      continue;
    }
    if (current.empty()) return false;
    out->messages[current].push_back(TrimStr(line));
  }
  return true;
}

void DiffMessage(const std::string& name, const std::vector<std::string>& want,
                 const std::vector<std::string>& got, const SourceFile& f,
                 std::vector<Finding>* findings) {
  if (want == got) return;
  // Appended trailing optionals are the one legal evolution — still a
  // failure (the snapshot must be refreshed deliberately), but say so.
  bool legal_extension = got.size() > want.size();
  for (size_t i = 0; legal_extension && i < want.size(); ++i) {
    legal_extension = want[i] == got[i];
  }
  for (size_t i = want.size(); legal_extension && i < got.size(); ++i) {
    legal_extension = got[i].compare(0, 4, "opt ") == 0;
  }
  std::ostringstream msg;
  if (legal_extension) {
    msg << "message " << name << " gained " << (got.size() - want.size())
        << " trailing-optional field(s) — legal evolution; refresh the "
           "snapshot with --update-golden:";
  } else {
    msg << "WIRE-BREAKING change in message " << name
        << " (golden -> source):";
  }
  size_t n = std::max(want.size(), got.size());
  for (size_t i = 0; i < n; ++i) {
    std::string w = i < want.size() ? want[i] : "(absent)";
    std::string g = i < got.size() ? got[i] : "(absent)";
    if (w == g) continue;
    msg << "\n    field " << i << ": " << w << "  ->  " << g;
  }
  findings->push_back({f.path, 1, "wire", msg.str(), true});
}

}  // namespace

std::string RunWireSchemaPass(const Options& opt, const SourceFile& proto,
                              std::vector<Finding>* findings) {
  FileModel model = BuildModel(proto);
  Extractor ex(proto, model, findings);

  struct Pair {
    const FunctionDef* enc = nullptr;
    const FunctionDef* dec = nullptr;
  };
  std::map<std::string, Pair> pairs;
  for (const FunctionDef& fd : model.functions) {
    if (fd.class_name.empty()) continue;
    if (fd.name == "Serialize") pairs[fd.class_name].enc = &fd;
    if (fd.name == "Deserialize") pairs[fd.class_name].dec = &fd;
  }

  Schema schema;
  for (const auto& [name, pair] : pairs) {
    if (pair.enc == nullptr || pair.dec == nullptr) {
      const FunctionDef* have = pair.enc != nullptr ? pair.enc : pair.dec;
      findings->push_back(
          {proto.path, proto.LineOf(have->sig_off), "wire",
           "message " + name + " has " +
               (pair.enc != nullptr ? std::string("Serialize")
                                    : std::string("Deserialize")) +
               " but no matching " +
               (pair.enc != nullptr ? std::string("Deserialize")
                                    : std::string("Serialize")),
           true});
      continue;
    }
    SeqResult enc = ex.Parse(*pair.enc);
    SeqResult dec = ex.Parse(*pair.dec);
    CheckDiscipline(proto, *pair.enc, enc.ops, findings);
    CheckDiscipline(proto, *pair.dec, dec.ops, findings);

    // Encode/decode symmetry.
    size_t n = std::max(enc.ops.size(), dec.ops.size());
    for (size_t i = 0; i < n; ++i) {
      if (i >= enc.ops.size() || i >= dec.ops.size()) {
        const bool enc_short = enc.ops.size() < dec.ops.size();
        findings->push_back(
            {proto.path,
             proto.LineOf(enc_short ? pair.enc->sig_off : pair.dec->sig_off),
             "wire",
             name + ": encode writes " + std::to_string(enc.ops.size()) +
                 " field(s) but decode reads " +
                 std::to_string(dec.ops.size()) + " — first unmatched: '" +
                 Describe(enc_short ? dec.ops[i] : enc.ops[i]) + "'",
             true});
        break;
      }
      const Op& e = enc.ops[i];
      const Op& d = dec.ops[i];
      if (!Compatible(e, d) || e.optional != d.optional) {
        findings->push_back(
            {proto.path, proto.LineOf(pair.enc->sig_off), "wire",
             name + ": field " + std::to_string(i) +
                 " mismatch — encode '" + Describe(e) + "' vs decode '" +
                 Describe(d) + "'",
             true});
      }
    }

    // Canonical schema: decode supplies message types the encode side
    // cannot see; encode supplies the better field names.
    std::vector<std::string> fields;
    for (size_t i = 0; i < enc.ops.size(); ++i) {
      Op op = enc.ops[i];
      if (i < dec.ops.size()) {
        if (op.type.empty()) op.type = dec.ops[i].type;
        if (op.name.empty()) op.name = dec.ops[i].name;
      }
      fields.push_back(Describe(op));
    }
    schema.messages[name] = std::move(fields);
  }

  std::string rendered = RenderSchema(schema);

  if (!opt.golden.empty()) {
    if (opt.update_golden) {
      std::ofstream out(opt.golden, std::ios::binary | std::ios::trunc);
      out << rendered;
    } else {
      std::ifstream in(opt.golden, std::ios::binary);
      if (!in) {
        findings->push_back({opt.golden, 1, "wire",
                             "golden schema snapshot missing — run "
                             "propeller_analyze --update-golden to create it",
                             true});
      } else {
        std::ostringstream buf;
        buf << in.rdbuf();
        Schema golden;
        if (!ParseGolden(buf.str(), &golden)) {
          findings->push_back(
              {opt.golden, 1, "wire", "golden schema snapshot is malformed",
               true});
        } else {
          for (const auto& [name, fields] : golden.messages) {
            auto it = schema.messages.find(name);
            if (it == schema.messages.end()) {
              findings->push_back(
                  {proto.path, 1, "wire",
                   "message " + name +
                       " removed (still present in the golden snapshot) — "
                       "deleting a wire message is wire-breaking",
                   true});
              continue;
            }
            DiffMessage(name, fields, it->second, proto, findings);
          }
          for (const auto& [name, fields] : schema.messages) {
            (void)fields;
            if (golden.messages.count(name) == 0u) {
              findings->push_back(
                  {proto.path, 1, "wire",
                   "message " + name +
                       " is not in the golden snapshot — record it with "
                       "--update-golden",
                   true});
            }
          }
        }
      }
    }
  }
  return rendered;
}

}  // namespace propeller::analyze
