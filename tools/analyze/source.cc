// Shared scanner for propeller-analyze: comment/string stripping with
// analyze:allow() capture, plus a brace-classification walk that recovers
// namespaces, class bodies, and function definitions without a real C++
// parser.  The model is intentionally approximate — good enough for the
// declaration idioms this repo enforces (see DESIGN.md), not general C++.
#include "analyze.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace propeller::analyze {

namespace {

bool IsWordBoundary(const std::string& s, size_t pos) {
  return pos == 0 || !IsIdentChar(s[pos - 1]);
}

// Records `analyze:allow(tag)` occurrences found inside comment text.
void ScanAllows(const std::string& comment, int line, SourceFile& f) {
  static const std::string kKey = "analyze:allow(";
  size_t pos = 0;
  while ((pos = comment.find(kKey, pos)) != std::string::npos) {
    size_t tag_begin = pos + kKey.size();
    size_t tag_end = comment.find(')', tag_begin);
    if (tag_end == std::string::npos) break;
    f.allows[line].insert(comment.substr(tag_begin, tag_end - tag_begin));
    pos = tag_end;
  }
}

// Blanks comment and string-literal contents (quotes kept) and records
// allow tags.  Also blanks preprocessor lines so macro bodies with braces
// cannot desynchronise the brace walk.
void Strip(SourceFile& f) {
  const std::string& in = f.text;
  std::string out = in;
  int line = 1;
  enum State { kCode, kLine, kBlock, kStr, kChr, kPre };
  State st = kCode;
  std::string comment;  // accumulates current comment text for allow scan
  int comment_line = 1;
  for (size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    char n = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case kCode:
        if (c == '/' && n == '/') {
          st = kLine;
          comment.clear();
          comment_line = line;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && n == '*') {
          st = kBlock;
          comment.clear();
          comment_line = line;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = kStr;
        } else if (c == '\'') {
          st = kChr;
        } else if (c == '#' &&
                   (i == 0 || in[i - 1] == '\n' ||
                    [&] {  // only whitespace since the line start
                      size_t j = i;
                      while (j > 0 && (in[j - 1] == ' ' || in[j - 1] == '\t')) --j;
                      return j == 0 || in[j - 1] == '\n';
                    }())) {
          st = kPre;
          out[i] = ' ';
        }
        break;
      case kLine:
        if (c == '\n') {
          ScanAllows(comment, comment_line, f);
          st = kCode;
        } else {
          comment.push_back(c);
          out[i] = ' ';
        }
        break;
      case kBlock:
        if (c == '*' && n == '/') {
          ScanAllows(comment, comment_line, f);
          st = kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '\n') {
          // Allow tags apply per comment line in block comments too.
          ScanAllows(comment, comment_line, f);
          comment.clear();
          comment_line = line + 1;
        } else {
          comment.push_back(c);
          out[i] = ' ';
        }
        break;
      case kStr:
        if (c == '\\' && n != '\0') {
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case kChr:
        if (c == '\\' && n != '\0') {
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case kPre:
        if (c == '\n') {
          st = (i > 0 && in[i - 1] == '\\') ? kPre : kCode;
        } else if (c == '/' && n == '/') {
          // Trailing comment on a directive line may still carry allows.
          st = kLine;
          comment.clear();
          comment_line = line;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else {
          out[i] = ' ';
        }
        break;
    }
    if (c == '\n') ++line;
  }
  if (st == kLine) ScanAllows(comment, comment_line, f);
  f.code = std::move(out);
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::string FirstWord(const std::string& s) {
  size_t b = 0;
  while (b < s.size() && !IsIdentChar(s[b])) ++b;
  size_t e = b;
  while (e < s.size() && IsIdentChar(s[e])) ++e;
  return s.substr(b, e - b);
}

bool HasWord(const std::string& s, const std::string& word) {
  size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    bool lb = pos == 0 || !IsIdentChar(s[pos - 1]);
    size_t end = pos + word.size();
    bool rb = end >= s.size() || !IsIdentChar(s[end]);
    if (lb && rb) return true;
    pos = end;
  }
  return false;
}

// Strips trailing function qualifiers (const/noexcept/override/final,
// thread-annotation macro calls, trailing return types) so a function head
// reliably ends in ')'.
std::string StripTrailingQualifiers(std::string head) {
  for (;;) {
    head = Trim(head);
    if (head.empty()) return head;
    // `-> Type` trailing return.
    size_t arrow = head.rfind("->");
    if (arrow != std::string::npos &&
        head.find_first_of("(){}", arrow) == std::string::npos) {
      head = head.substr(0, arrow);
      continue;
    }
    if (head.back() == ')') {
      // Might be a qualifier macro like REQUIRES(mu_); strip it only when
      // the identifier before its '(' is ALL_CAPS (macro convention) —
      // otherwise this is the signature paren and we are done.
      size_t open = head.rfind('(');
      // Find the '(' matching the trailing ')'.
      int depth = 0;
      size_t i = head.size();
      while (i-- > 0) {
        if (head[i] == ')') ++depth;
        if (head[i] == '(') {
          if (--depth == 0) break;
        }
      }
      open = i;
      std::string name = IdentBefore(head, open);
      bool all_caps = !name.empty() &&
                      std::all_of(name.begin(), name.end(), [](char c) {
                        return std::isupper(static_cast<unsigned char>(c)) ||
                               c == '_' || std::isdigit(static_cast<unsigned char>(c));
                      });
      if (all_caps && head.find('(') < open) {
        head = head.substr(0, open - name.size());
        continue;
      }
      return head;
    }
    std::string last;
    size_t e = head.size();
    while (e > 0 && IsIdentChar(head[e - 1])) --e;
    last = head.substr(e);
    if (last == "const" || last == "noexcept" || last == "override" ||
        last == "final" || last == "mutable") {
      head = head.substr(0, e);
      continue;
    }
    return head;
  }
}

// The `A::B::C` identifier chain ending at `end` (exclusive).
std::string ChainBefore(const std::string& s, size_t end) {
  size_t e = end;
  while (e > 0 && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n')) --e;
  size_t b = e;
  for (;;) {
    size_t ident = b;
    while (ident > 0 && IsIdentChar(s[ident - 1])) --ident;
    if (ident == b) break;  // no identifier
    b = ident;
    if (b >= 2 && s[b - 1] == ':' && s[b - 2] == ':') {
      b -= 2;
      continue;
    }
    break;
  }
  return s.substr(b, e - b);
}

}  // namespace

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string IdentBefore(const std::string& code, size_t end) {
  size_t e = end;
  while (e > 0 && (code[e - 1] == ' ' || code[e - 1] == '\t' ||
                   code[e - 1] == '\n' || code[e - 1] == '\r')) {
    --e;
  }
  size_t b = e;
  while (b > 0 && IsIdentChar(code[b - 1])) --b;
  return code.substr(b, e - b);
}

bool WordAt(const std::string& code, size_t pos, const std::string& word) {
  if (code.compare(pos, word.size(), word) != 0) return false;
  if (!IsWordBoundary(code, pos)) return false;
  size_t end = pos + word.size();
  return end >= code.size() || !IsIdentChar(code[end]);
}

size_t MatchBracket(const std::string& code, size_t open) {
  char o = code[open];
  char c = o == '(' ? ')' : o == '{' ? '}' : o == '[' ? ']' : '>';
  int depth = 0;
  for (size_t i = open; i < code.size(); ++i) {
    if (code[i] == o) ++depth;
    else if (code[i] == c && --depth == 0) return i;
  }
  return code.size();
}

int SourceFile::LineOf(size_t off) const {
  auto it = std::upper_bound(line_starts.begin(), line_starts.end(), off);
  return static_cast<int>(it - line_starts.begin());
}

bool SourceFile::Allowed(const std::string& pass, size_t off) const {
  int line = LineOf(off);
  for (int l : {line, line - 1}) {
    auto it = allows.find(l);
    if (it != allows.end() &&
        (it->second.count(pass) != 0u || it->second.count("all") != 0u)) {
      return true;
    }
  }
  return false;
}

SourceFile MakeSource(std::string path, std::string text) {
  SourceFile f;
  f.path = std::move(path);
  f.text = std::move(text);
  f.line_starts.push_back(0);
  for (size_t i = 0; i < f.text.size(); ++i) {
    if (f.text[i] == '\n') f.line_starts.push_back(i + 1);
  }
  Strip(f);
  return f;
}

SourceFile LoadSource(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return MakeSource(path, buf.str());
}

std::vector<std::string> ListSources(const std::string& dir) {
  std::vector<std::string> out;
  namespace fs = std::filesystem;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    std::string p = it->path().string();
    if (p.size() > 2 && (p.compare(p.size() - 2, 2, ".h") == 0 ||
                         p.compare(p.size() - 3, 3, ".cc") == 0)) {
      out.push_back(p);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

FileModel BuildModel(const SourceFile& f) {
  FileModel model;
  const std::string& code = f.code;

  struct Ctx {
    char kind;  // 'n' namespace, 't' type, 'f' function, 'b' block, 'i' init
    size_t boundary;    // start of the current statement at this depth
    int class_idx = -1;  // into model.classes when kind == 't'
    int func_idx = -1;   // into model.functions when kind == 'f'
  };
  std::vector<Ctx> stack;
  stack.push_back({'n', 0, -1, -1});

  for (size_t i = 0; i < code.size(); ++i) {
    char c = code[i];
    if (c == '(') {
      // Skip paren groups wholesale: for(;;) semicolons and lambda bodies
      // in call arguments must not look like statement boundaries.
      i = MatchBracket(code, i);
      continue;
    }
    if (c == ':' && stack.back().kind == 't' &&
        (i + 1 >= code.size() || code[i + 1] != ':') &&
        (i == 0 || code[i - 1] != ':')) {
      // Access-specifier labels are statement boundaries too.
      std::string label = IdentBefore(code, i);
      if (label == "public" || label == "private" || label == "protected") {
        stack.back().boundary = i + 1;
      }
      continue;
    }
    if (c == ';') {
      Ctx& top = stack.back();
      if (top.kind == 't' && top.class_idx >= 0) {
        std::string stmt = Trim(code.substr(top.boundary, i - top.boundary));
        if (!stmt.empty()) {
          MemberStmt m;
          m.stmt = stmt;
          m.off = top.boundary;
          // Declared name: identifier before `=`, `{`, `(`, or the `;`.
          size_t cut = stmt.find_first_of("={(");
          m.name = IdentBefore(stmt, cut == std::string::npos ? stmt.size() : cut);
          model.classes[top.class_idx].members.push_back(std::move(m));
        }
      }
      top.boundary = i + 1;
      continue;
    }
    if (c == '{') {
      Ctx& top = stack.back();
      std::string head = Trim(code.substr(top.boundary, i - top.boundary));
      Ctx next{'i', i + 1, -1, -1};
      std::string first = FirstWord(head);
      bool in_scope = top.kind == 'n' || top.kind == 't';
      if (head.empty() || head.back() == '=' || head.back() == ',' ||
          head.back() == '{' || head.back() == '(') {
        next.kind = 'i';
      } else if (first == "if" || first == "for" || first == "while" ||
                 first == "switch" || first == "do" || first == "else" ||
                 first == "try" || first == "catch") {
        next.kind = 'b';
      } else if (HasWord(head, "namespace")) {
        next.kind = 'n';
      } else if ((HasWord(head, "class") || HasWord(head, "struct") ||
                  HasWord(head, "union") || HasWord(head, "enum")) &&
                 head.find('(') == std::string::npos) {
        next.kind = 't';
        // Name: first identifier after the keyword that is not a
        // qualifier; `enum class X : base` and `struct X final` work.
        static const char* kKeys[] = {"class", "struct", "union", "enum"};
        size_t kpos = std::string::npos;
        for (const char* k : kKeys) {
          size_t p = head.find(k);
          while (p != std::string::npos &&
                 !(IsWordBoundary(head, p) &&
                   (p + strlen(k) >= head.size() ||
                    !IsIdentChar(head[p + strlen(k)])))) {
            p = head.find(k, p + 1);
          }
          if (p != std::string::npos) kpos = std::min(kpos, p);
        }
        std::string rest = kpos == std::string::npos ? head : head.substr(kpos);
        std::string name;
        size_t p = 0;
        while (p < rest.size()) {
          while (p < rest.size() && !IsIdentChar(rest[p])) {
            if (rest[p] == ':') { p = rest.size(); break; }  // base clause
            ++p;
          }
          size_t e = p;
          while (e < rest.size() && IsIdentChar(rest[e])) ++e;
          std::string w = rest.substr(p, e - p);
          p = e;
          if (w == "class" || w == "struct" || w == "union" || w == "enum" ||
              w == "final" || w.empty()) {
            continue;
          }
          // Attribute macros (SCOPED_CAPABILITY, CAPABILITY(...)) are
          // ALL_CAPS by convention — the real name follows them.
          if (std::all_of(w.begin(), w.end(), [](char ch) {
                return std::isupper(static_cast<unsigned char>(ch)) ||
                       ch == '_' || std::isdigit(static_cast<unsigned char>(ch));
              })) {
            continue;
          }
          name = w;
          break;
        }
        ClassInfo ci;
        ci.name = name;
        next.class_idx = static_cast<int>(model.classes.size());
        model.classes.push_back(std::move(ci));
      } else {
        std::string stripped = StripTrailingQualifiers(head);
        bool fnish = !stripped.empty() && stripped.back() == ')';
        if (fnish && in_scope && stripped.find("operator") == std::string::npos) {
          // Function definition (possibly with ctor-init list: the
          // signature paren is the first top-level one).
          size_t open = head.find('(');
          size_t close = open == std::string::npos
                             ? std::string::npos
                             : MatchBracket(head, open);
          FunctionDef fd;
          if (open != std::string::npos && close != std::string::npos) {
            fd.params = head.substr(open + 1, close - open - 1);
            std::string chain = ChainBefore(head, open);
            size_t sep = chain.rfind("::");
            if (sep == std::string::npos) {
              fd.name = chain;
            } else {
              fd.name = chain.substr(sep + 2);
              std::string qual = chain.substr(0, sep);
              size_t qsep = qual.rfind("::");
              fd.class_name =
                  qsep == std::string::npos ? qual : qual.substr(qsep + 2);
            }
          }
          if (fd.class_name.empty() && top.kind == 't' && top.class_idx >= 0) {
            fd.class_name = model.classes[top.class_idx].name;
          }
          fd.sig_off = top.boundary;
          fd.body_begin = i + 1;
          next.kind = 'f';
          next.func_idx = static_cast<int>(model.functions.size());
          model.functions.push_back(std::move(fd));
        } else {
          // Aggregate init (`Mutex mu_{...}`), lambda body, requires-
          // expression, etc.
          next.kind = in_scope ? 'i' : 'b';
        }
      }
      stack.push_back(next);
      continue;
    }
    if (c == '}') {
      if (stack.size() > 1) {
        Ctx done = stack.back();
        stack.pop_back();
        if (done.kind == 'f' && done.func_idx >= 0) {
          model.functions[done.func_idx].body_end = i;
        }
        // Init braces are part of an enclosing statement (`Mutex mu_{..};`):
        // keep the boundary so the eventual ';' captures the whole decl.
        if (done.kind != 'i') stack.back().boundary = i + 1;
      }
      continue;
    }
  }
  return model;
}

}  // namespace propeller::analyze
