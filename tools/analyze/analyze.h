// propeller-analyze: dependency-free static analysis over src/.
//
// Three passes guard the repo invariants that nothing else checks without
// Clang installed (token/declaration-level parsing only — this must run
// everywhere cmake does):
//
//   wire         Encode/decode symmetry + trailing-optional discipline for
//                every wire message in src/core/proto.cc, diffed against
//                the checked-in golden schema snapshot
//                (tools/analyze/wire_schema.golden).
//   locks        propeller::Mutex/SharedMutex declarations, their LockRank
//                assignments, the DESIGN.md rank table, and the static
//                (lexical, one level of call propagation) acquisition
//                graph: every edge must go strictly rank-upward.
//   determinism  Ban-list for bit-identical simulation: wall-clock sources
//                outside the obs/ shims, rand()/std::random_device, and
//                unordered-container iteration that feeds a BinaryWriter.
//
// Escape hatch: a `// analyze:allow(<pass>)` comment on the offending line
// or the line above suppresses a finding (use sparingly, with a
// justification comment).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace propeller::analyze {

struct Finding {
  std::string file;
  int line = 0;
  std::string pass;  // "wire" | "locks" | "determinism"
  std::string message;
  bool fatal = true;  // notes are printed but do not fail the run
};

// One loaded translation unit/header.  `code` is `text` with comment and
// string-literal *contents* blanked to spaces (quotes and newlines kept),
// so offsets and line numbers line up between the two.
struct SourceFile {
  std::string path;
  std::string text;
  std::string code;
  // line (1-based) -> allow tags seen in comments on that line.
  std::map<int, std::set<std::string>> allows;
  std::vector<size_t> line_starts;

  int LineOf(size_t off) const;
  // True when `// analyze:allow(pass)` covers this offset (same line or
  // the line above).
  bool Allowed(const std::string& pass, size_t off) const;
};

SourceFile LoadSource(const std::string& path);
SourceFile MakeSource(std::string path, std::string text);  // for tests
// All *.h / *.cc under `dir`, recursively, sorted by path.
std::vector<std::string> ListSources(const std::string& dir);

// ---- light structural model -------------------------------------------

struct MemberStmt {
  std::string stmt;  // statement text (stripped code), braces included
  std::string name;  // best-effort declared identifier ("" if none)
  size_t off = 0;    // offset of the statement start in `code`
};

struct ClassInfo {
  std::string name;
  std::vector<MemberStmt> members;  // `;`-terminated statements at class depth
};

struct FunctionDef {
  std::string name;        // unqualified ("Serialize", "HandleTick", ...)
  std::string class_name;  // from "X::name" or the enclosing class; "" = free
  std::string params;      // text inside the signature parens
  size_t sig_off = 0;      // offset of the head (line reporting)
  size_t body_begin = 0;   // offset just inside '{'
  size_t body_end = 0;     // offset of the matching '}'
};

struct FileModel {
  std::vector<ClassInfo> classes;
  std::vector<FunctionDef> functions;
};

FileModel BuildModel(const SourceFile& f);

// ---- small token helpers (shared by the passes) -----------------------

bool IsIdentChar(char c);
// The identifier ending exactly at `end` (exclusive), "" if none.
std::string IdentBefore(const std::string& code, size_t end);
// True when code[pos..] starts the whole-word identifier `word`.
bool WordAt(const std::string& code, size_t pos, const std::string& word);
// Offset of the matching close for the open bracket at `open`.
size_t MatchBracket(const std::string& code, size_t open);

// ---- passes ------------------------------------------------------------

struct Options {
  std::string src_dir = "src";
  std::string golden;        // wire_schema.golden (empty = skip golden diff)
  std::string design;        // DESIGN.md (empty = skip table cross-check)
  std::string lock_test;     // lock_rank_test.cc (empty = skip coverage note)
  bool update_golden = false;
  bool verbose = false;
};

// Wire pass over the given proto source (normally src/core/proto.cc).
// Returns the canonical schema text (also what --update-golden writes).
std::string RunWireSchemaPass(const Options& opt, const SourceFile& proto,
                              std::vector<Finding>* findings);

void RunLockOrderPass(const Options& opt, const std::vector<SourceFile>& files,
                      std::vector<Finding>* findings);

void RunDeterminismPass(const Options& opt,
                        const std::vector<SourceFile>& files,
                        std::vector<Finding>* findings);

}  // namespace propeller::analyze
