// DeterminismPass: ban-list for bit-identical simulation runs.
//
//   1. Wall-clock sources — std::chrono::{system,steady,high_resolution}
//      _clock, clock_gettime, gettimeofday anywhere outside src/obs/
//      (observability may report wall time beside simulated time; nothing
//      else may even read it).
//   2. Ambient randomness — rand/srand/random_device/drand48/lrand48.
//      All randomness must come from seeded engines owned by the
//      simulation (net::FaultPlan, bench workloads).
//   3. Unordered-container iteration feeding serialized output — a
//      range-for over an unordered_map/unordered_set whose body performs
//      BinaryWriter Put*/Serialize calls.  libstdc++ iteration order is
//      deterministic in practice but unspecified; once it reaches the
//      wire, a journal, or a golden file it becomes a portability bug.
//      (Sort the keys first — see Acg::SortedVertices for the idiom.)
//
// `// analyze:allow(determinism)` on the line (or the line above)
// documents a deliberate exception, e.g. common/stopwatch.h.
#include "analyze.h"

#include <cctype>
#include <map>
#include <set>

namespace propeller::analyze {

namespace {

bool InObs(const std::string& path) {
  return path.find("/obs/") != std::string::npos ||
         path.compare(0, 4, "obs/") == 0;
}

const char* const kClockBans[] = {"system_clock", "steady_clock",
                                  "high_resolution_clock", "clock_gettime",
                                  "gettimeofday", "time"};
const char* const kRandBans[] = {"rand", "srand", "random_device", "drand48",
                                 "lrand48", "mt19937_external"};

// `time` and `rand` are short and common; require a call or std::
// qualification to avoid flagging identifiers like `now_time`.
bool NeedsCallContext(const std::string& word) {
  return word == "time" || word == "rand" || word == "srand";
}

}  // namespace

void RunDeterminismPass(const Options& opt,
                        const std::vector<SourceFile>& files,
                        std::vector<Finding>* findings) {
  (void)opt;
  // Pass 1: collect unordered members per class and unordered-returning
  // accessor names, across all files (members are often used from the
  // .cc while declared in the .h).
  std::map<std::string, std::set<std::string>> unordered_members;
  std::set<std::string> unordered_accessors;
  std::vector<FileModel> models;
  models.reserve(files.size());
  for (const SourceFile& f : files) {
    models.push_back(BuildModel(f));
    for (const ClassInfo& ci : models.back().classes) {
      for (const MemberStmt& m : ci.members) {
        if (m.stmt.find("unordered_map<") == std::string::npos &&
            m.stmt.find("unordered_set<") == std::string::npos) {
          continue;
        }
        if (m.name.empty()) continue;
        if (m.stmt.find('(') != std::string::npos &&
            m.stmt.find('{') == std::string::npos) {
          // Accessor declaration like
          // `const std::unordered_set<FileId>& vertices() const;` or an
          // inline definition — the *name* becomes tainted everywhere.
          unordered_accessors.insert(m.name);
        } else {
          unordered_members[ci.name].insert(m.name);
        }
      }
    }
  }

  for (size_t fi = 0; fi < files.size(); ++fi) {
    const SourceFile& f = files[fi];
    const std::string& code = f.code;

    // --- banned tokens --------------------------------------------------
    for (size_t i = 0; i < code.size(); ++i) {
      if (!IsIdentChar(code[i]) || (i > 0 && IsIdentChar(code[i - 1]))) {
        continue;
      }
      size_t e = i;
      while (e < code.size() && IsIdentChar(code[e])) ++e;
      std::string word = code.substr(i, e - i);
      bool is_clock = false, is_rand = false;
      for (const char* b : kClockBans) is_clock = is_clock || word == b;
      for (const char* b : kRandBans) is_rand = is_rand || word == b;
      if (!is_clock && !is_rand) {
        i = e;
        continue;
      }
      if (is_clock && InObs(f.path)) {
        i = e;
        continue;
      }
      // Member access (`x.time`, `plan->rand`) is not the libc call.
      bool member = (i >= 1 && code[i - 1] == '.') ||
                    (i >= 2 && code.compare(i - 2, 2, "->") == 0);
      if (member) {
        i = e;
        continue;
      }
      if (NeedsCallContext(word)) {
        bool qualified = i >= 2 && code[i - 1] == ':' && code[i - 2] == ':';
        size_t after = e;
        while (after < code.size() &&
               std::isspace(static_cast<unsigned char>(code[after]))) {
          ++after;
        }
        bool call = after < code.size() && code[after] == '(';
        // Declarations like `double time = ...` or struct fields named
        // rand are fine; `rand()`, `std::time(nullptr)` are not.
        if (!call && !qualified) {
          i = e;
          continue;
        }
        if (call && !qualified) {
          // A method named `time`/`rand` defined in this repo would be a
          // self-call; only flag the bare libc spelling when no such
          // method exists nearby — conservative: flag it, allow-list the
          // rare false positive.
        }
      }
      if (!f.Allowed("determinism", i)) {
        findings->push_back(
            {f.path, f.LineOf(i), "determinism",
             "banned " + std::string(is_clock ? "wall-clock" : "randomness") +
                 " source '" + word +
                 "' — simulation code must use sim time / seeded engines "
                 "(annotate analyze:allow(determinism) if deliberate)",
             true});
      }
      i = e;
    }

    // --- unordered iteration into serialized output ---------------------
    for (const FunctionDef& fd : models[fi].functions) {
      if (fd.body_end <= fd.body_begin) continue;
      for (size_t i = fd.body_begin; i < fd.body_end; ++i) {
        if (!WordAt(code, i, "for")) continue;
        size_t open = code.find('(', i);
        if (open == std::string::npos || open >= fd.body_end) break;
        size_t close = MatchBracket(code, open);
        std::string head = code.substr(open + 1, close - open - 1);
        // Range-for only: find a top-level ':' that is not '::'.
        int depth = 0;
        size_t colon = std::string::npos;
        for (size_t k = 0; k < head.size(); ++k) {
          char h = head[k];
          if (h == '(' || h == '[' || h == '{' || h == '<') ++depth;
          if (h == ')' || h == ']' || h == '}' || h == '>') --depth;
          if (h == ':' && depth == 0 &&
              (k + 1 >= head.size() || head[k + 1] != ':') &&
              (k == 0 || head[k - 1] != ':')) {
            colon = k;
            break;
          }
        }
        if (colon == std::string::npos) {
          i = close;
          continue;
        }
        std::string range = head.substr(colon + 1);
        // Tainted when the range mentions an unordered member of the
        // enclosing class, a file-local unordered variable declared
        // earlier in this function, or an unordered-returning accessor.
        bool tainted = false;
        std::string cause;
        const std::set<std::string>* members = nullptr;
        auto cit = unordered_members.find(fd.class_name);
        if (cit != unordered_members.end()) members = &cit->second;
        for (size_t k = 0; k < range.size(); ++k) {
          if (!IsIdentChar(range[k]) || (k > 0 && IsIdentChar(range[k - 1]))) {
            continue;
          }
          size_t we = k;
          while (we < range.size() && IsIdentChar(range[we])) ++we;
          std::string w = range.substr(k, we - k);
          k = we;
          if (members != nullptr && members->count(w) != 0u) {
            tainted = true;
            cause = fd.class_name + "::" + w;
            break;
          }
          if (unordered_accessors.count(w) != 0u) {
            // Accessor taint requires a call: `acg.vertices()`.
            size_t a = we;
            while (a < range.size() &&
                   std::isspace(static_cast<unsigned char>(range[a]))) {
              ++a;
            }
            if (a < range.size() && range[a] == '(') {
              tainted = true;
              cause = w + "()";
              break;
            }
          }
          // Local unordered declarations inside this function body.
          size_t decl = code.find("unordered_", fd.body_begin);
          while (decl != std::string::npos && decl < i) {
            size_t semi = code.find(';', decl);
            if (semi != std::string::npos && semi < i) {
              std::string stmt = code.substr(decl, semi - decl);
              size_t cut = stmt.find_first_of("={(");
              std::string name = IdentBefore(
                  stmt, cut == std::string::npos ? stmt.size() : cut);
              if (!name.empty() && name == w) {
                tainted = true;
                cause = "local " + w;
                break;
              }
            }
            decl = code.find("unordered_", decl + 1);
          }
          if (tainted) break;
        }
        if (!tainted) {
          i = close;
          continue;
        }
        // Sink check: does the loop body serialize?
        size_t body_begin = close + 1;
        while (body_begin < fd.body_end &&
               std::isspace(static_cast<unsigned char>(code[body_begin]))) {
          ++body_begin;
        }
        size_t body_end;
        if (body_begin < fd.body_end && code[body_begin] == '{') {
          body_end = MatchBracket(code, body_begin);
        } else {
          body_end = code.find(';', body_begin);
          if (body_end == std::string::npos || body_end > fd.body_end) {
            body_end = fd.body_end;
          }
        }
        std::string body = code.substr(body_begin, body_end - body_begin);
        bool sink = body.find(".Serialize(") != std::string::npos;
        for (size_t k = 0; !sink && (k = body.find(".Put", k)) !=
                                    std::string::npos;
             ++k) {
          sink = k + 4 < body.size() &&
                 std::isupper(static_cast<unsigned char>(body[k + 4]));
        }
        if (sink && !f.Allowed("determinism", i)) {
          findings->push_back(
              {f.path, f.LineOf(i), "determinism",
               "iteration over unordered container (" + cause +
                   ") feeds serialized output — iteration order is "
                   "unspecified; sort the keys first (see "
                   "Acg::SortedVertices)",
               true});
        }
        i = close;
      }
    }
  }
}

}  // namespace propeller::analyze
