// Drug-discovery screening: the paper's motivating analytics application
// (Molegro Virtual Docker, Section II).
//
// A protein-structure dataset stores one file per protein with hundreds of
// attributes (structure/energy characteristics).  The screening pipeline
// repeatedly (1) queries for a refined candidate set sharing characteristics
// observed in the previous round, (2) "docks" the candidates (computes new
// scores), and (3) re-indexes the updated files — exactly the
// search-compute-update loop Propeller's real-time indexing accelerates:
// every round's query sees the previous round's results immediately.
#include <cstdio>
#include <vector>

#include "common/fmt.h"
#include "common/rng.h"
#include "core/cluster.h"
#include "core/query_parser.h"

using namespace propeller;

namespace {

index::FileUpdate Protein(uint64_t id, Rng& rng) {
  index::FileUpdate u;
  u.file = id;
  u.attrs.Set("path", index::AttrValue(Sprintf("/proteins/p%llu.pdb",
                                               (unsigned long long)id)));
  u.attrs.Set("size", index::AttrValue(static_cast<int64_t>(
                          50'000 + rng.Uniform(500'000))));
  // User-defined attributes: Propeller indexes arbitrary fields, not just
  // inode metadata (Section IV).
  u.attrs.Set("mass_kda", index::AttrValue(20.0 + rng.UniformDouble() * 180.0));
  u.attrs.Set("binding_energy",
              index::AttrValue(-12.0 + rng.UniformDouble() * 10.0));
  u.attrs.Set("dock_score", index::AttrValue(0.0));
  return u;
}

}  // namespace

int main() {
  const uint64_t kProteins = 100'000;
  core::ClusterConfig config;
  config.index_nodes = 8;
  core::PropellerCluster cluster(config);
  auto& client = cluster.client();

  // A K-D tree over the screening dimensions and a B-tree over the score.
  (void)client.CreateIndex({"by_structure",
                            index::IndexType::kKdTree,
                            {"mass_kda", "binding_energy"}});
  (void)client.CreateIndex(
      {"by_score", index::IndexType::kBTree, {"dock_score"}});

  std::printf("loading %llu protein structures...\n",
              static_cast<unsigned long long>(kProteins));
  Rng rng(99);
  std::vector<index::FileUpdate> load;
  load.reserve(kProteins);
  for (uint64_t id = 1; id <= kProteins; ++id) load.push_back(Protein(id, rng));
  if (auto st = client.BatchUpdate(std::move(load), cluster.now()); !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.status().ToString().c_str());
    return 1;
  }
  cluster.AdvanceTime(6.0);

  // Screening loop: refine candidates by structural window, dock them,
  // record scores, then narrow by score next round.
  index::Predicate window;
  window.And("mass_kda", index::CmpOp::kGe, index::AttrValue(40.0))
      .And("mass_kda", index::CmpOp::kLe, index::AttrValue(60.0))
      .And("binding_energy", index::CmpOp::kLe, index::AttrValue(-8.0));
  double score_cut = 0.0;

  for (int round = 1; round <= 4; ++round) {
    index::Predicate pred = window;
    if (round > 1) {
      pred.And("dock_score", index::CmpOp::kGt, index::AttrValue(score_cut));
    }
    auto hits = client.Search(pred);
    if (!hits.ok()) {
      std::fprintf(stderr, "search failed: %s\n",
                   hits.status().ToString().c_str());
      return 1;
    }
    std::printf("round %d: %zu candidates (query %.2fms over %zu nodes)\n",
                round, hits->files.size(), hits->cost.millis(),
                hits->nodes_queried);
    if (hits->files.empty()) break;

    // "Dock" the candidates: compute a score, update their files — the
    // real-time indexing path keeps the next round's query consistent.
    std::vector<index::FileUpdate> rescored;
    Rng dock(static_cast<uint64_t>(round) * 1234);
    for (index::FileId f : hits->files) {
      index::FileUpdate u;
      u.file = f;
      Rng attr_rng(f);  // regenerate the protein's static attributes
      u = Protein(f, attr_rng);
      u.attrs.Set("dock_score",
                  index::AttrValue(dock.UniformDouble() * (1.0 + 0.2 * round)));
      rescored.push_back(std::move(u));
    }
    auto cost = client.BatchUpdate(std::move(rescored), cluster.now());
    std::printf("  re-indexed %zu docked structures in %.2fms (simulated)\n",
                hits->files.size(), cost.ok() ? cost->millis() : -1.0);
    score_cut = 0.4 + 0.2 * round;  // tighten the score bar every round
  }

  std::printf("screening finished; groups in cluster: %llu\n",
              static_cast<unsigned long long>(cluster.TotalGroups()));
  return 0;
}
