// Quickstart: stand up a Propeller cluster, capture access causality
// through the client file system, index files in real time, and search.
//
//   $ ./quickstart
//
// Walks through the full pipeline on a toy workload and prints what
// happens at each step.
#include <cstdio>

#include "core/cluster.h"
#include "core/query_parser.h"
#include "fs/vfs.h"

using namespace propeller;

int main() {
  // 1. A Propeller cluster: 1 master + 4 index nodes on a simulated
  //    network, plus a client.
  core::ClusterConfig config;
  config.index_nodes = 4;
  core::PropellerCluster cluster(config);
  auto& client = cluster.client();

  // 2. Create named indices (globally unique names; B-tree / hash /
  //    K-D tree / keyword are supported).
  if (auto st = client.CreateIndex(
          {"by_size", index::IndexType::kBTree, {"size"}});
      !st.ok()) {
    std::fprintf(stderr, "create index: %s\n", st.status().ToString().c_str());
    return 1;
  }
  (void)client.CreateIndex({"by_kw", index::IndexType::kKeyword, {"path"}});
  std::printf("created indices: by_size (B-tree on size), by_kw (keywords)\n");

  // 3. The client sits under a (FUSE-style) file system and captures
  //    access causality transparently.
  fs::Vfs vfs;
  client.AttachVfs(&vfs);

  // A build-like process: reads two sources, writes one output.
  uint64_t pid = 100;
  auto src1 = vfs.Open(pid, "/proj/src/main.c", fs::OpenMode::kRead, true);
  auto src2 = vfs.Open(pid, "/proj/include/util.h", fs::OpenMode::kRead, true);
  auto out = vfs.Open(pid, "/proj/out/main.o", fs::OpenMode::kWrite, true);
  (void)vfs.Write(out->fd, 64 * 1024);
  (void)vfs.Close(out->fd);
  (void)vfs.Close(src2->fd);
  (void)vfs.Close(src1->fd);

  // 4. Flush the captured ACG delta: the master co-locates the causally
  //    related files in one index group.
  (void)client.FlushAcg();
  const auto& acg = cluster.master().acg_manager();
  fs::FileId fsrc = vfs.ns().Stat("/proj/src/main.c")->id;
  fs::FileId fout = vfs.ns().Stat("/proj/out/main.o")->id;
  std::printf("access causality: main.c -> main.o, same group: %s\n",
              acg.GroupOf(fsrc) == acg.GroupOf(fout) ? "yes" : "no");

  // 5. Real-time indexing: ship each file's attributes to its group.
  std::vector<index::FileUpdate> updates;
  vfs.ns().ForEachFile([&](const fs::FileStat& st) {
    index::FileUpdate u;
    u.file = st.id;
    u.attrs = st.ToAttrSet();
    updates.push_back(std::move(u));
  });
  auto cost = client.BatchUpdate(std::move(updates), cluster.now());
  std::printf("indexed %llu files in %.1fus (simulated)\n",
              static_cast<unsigned long long>(vfs.ns().NumFiles()),
              cost.ok() ? cost->micros() : -1.0);

  // 6. Search — results are consistent with every update above, no crawl
  //    delay.  Query strings use the File Query Engine grammar.
  auto result = client.SearchQuery("size>1k & keyword:out", vfs.now());
  if (!result.ok()) {
    std::fprintf(stderr, "search: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("query 'size>1k & keyword:out' -> %zu file(s):\n",
              result->files.size());
  for (index::FileId f : result->files) {
    auto st = vfs.ns().StatById(f);
    if (st.ok()) std::printf("  %s (%lld bytes)\n", st->path.c_str(),
                             static_cast<long long>(st->size));
  }
  std::printf("search latency: %.1fus (simulated), %zu node(s) queried\n",
              result->cost.micros(), result->nodes_queried);
  return 0;
}
