// Log analytics: the paper's time-critical indexing scenario ("log
// analytic workloads can index petabytes of logs in real-time before
// dozens of ad-hoc queries issued by either data scientists or
// applications", Section I).
//
// A fleet of services appends to per-service log files through the client
// file system; every rotation is indexed inline.  Meanwhile an analyst
// issues ad-hoc queries ("big error logs modified in the last hour") whose
// results are guaranteed to reflect every rotation that already happened —
// the property crawler-based engines cannot give.
#include <cstdio>
#include <vector>

#include "common/fmt.h"
#include "common/rng.h"
#include "core/cluster.h"
#include "core/query_parser.h"
#include "fs/vfs.h"

using namespace propeller;

namespace {

// One service writing (and rotating) its log through the Vfs.
class LogWriter {
 public:
  LogWriter(fs::Vfs* vfs, core::PropellerClient* client, std::string service,
            uint64_t pid)
      : vfs_(vfs), client_(client), service_(std::move(service)), pid_(pid) {}

  // Appends `bytes`; rotates into a fresh indexed file every `rotate_at`.
  Status Append(int64_t bytes, int64_t rotate_at, double now_s) {
    std::string path = Sprintf("/var/log/%s/%s.%llu.log", service_.c_str(),
                               service_.c_str(),
                               static_cast<unsigned long long>(generation_));
    auto open = vfs_->Open(pid_, path, fs::OpenMode::kWrite, /*create=*/true);
    if (!open.ok()) return open.status();
    PROPELLER_RETURN_IF_ERROR(vfs_->Write(open->fd, bytes).status());
    PROPELLER_RETURN_IF_ERROR(vfs_->Close(open->fd).status());

    // Real-time indexing: the rotation's metadata is searchable NOW.
    auto st = vfs_->ns().Stat(path);
    if (!st.ok()) return st.status();
    index::FileUpdate u;
    u.file = st->id;
    u.attrs = st->ToAttrSet();
    u.attrs.Set("service", index::AttrValue(service_));
    auto cost = client_->BatchUpdate({std::move(u)}, now_s);
    PROPELLER_RETURN_IF_ERROR(cost.status());

    if (st->size >= rotate_at) ++generation_;
    return Status::Ok();
  }

 private:
  fs::Vfs* vfs_;
  core::PropellerClient* client_;
  std::string service_;
  uint64_t pid_;
  uint64_t generation_ = 0;
};

}  // namespace

int main() {
  core::ClusterConfig config;
  config.index_nodes = 4;
  core::PropellerCluster cluster(config);
  auto& client = cluster.client();
  (void)client.CreateIndex({"by_size", index::IndexType::kBTree, {"size"}});
  (void)client.CreateIndex({"by_mtime", index::IndexType::kBTree, {"mtime"}});
  (void)client.CreateIndex({"by_kw", index::IndexType::kKeyword, {"path"}});

  fs::Vfs vfs;
  client.AttachVfs(&vfs);

  const char* services[] = {"apache", "mysqld", "sshd", "cron", "etl"};
  std::vector<LogWriter> writers;
  uint64_t pid = 1000;
  for (const char* s : services) writers.emplace_back(&vfs, &client, s, pid++);

  // Simulate ten minutes of logging with an analyst query every minute.
  Rng rng(7);
  for (int minute = 1; minute <= 10; ++minute) {
    for (double t = 0; t < 60; t += 5) {
      for (auto& w : writers) {
        int64_t burst = 64 * 1024 + static_cast<int64_t>(rng.Uniform(8 * 1024 * 1024));
        if (auto st = w.Append(burst, /*rotate_at=*/32 * 1024 * 1024,
                               cluster.now());
            !st.ok()) {
          std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
          return 1;
        }
      }
      vfs.AdvanceTime(5);
      cluster.AdvanceTime(5);
    }
    (void)client.FlushAcg();

    // Ad-hoc query: large, recently-modified apache logs.
    std::string q = "size>4m & mtime<5min & keyword:apache";
    auto result = client.SearchQuery(q, vfs.now());
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    // Cross-check against the live namespace: recall must be 100%.
    auto parsed = core::ParseQuery(q, vfs.now());
    uint64_t truth = 0;
    vfs.ns().ForEachFile([&](const fs::FileStat& st) {
      if (parsed->predicate.Matches(st.ToAttrSet())) ++truth;
    });
    std::printf(
        "minute %2d: '%s' -> %zu file(s), ground truth %llu, latency %.2fms "
        "%s\n",
        minute, q.c_str(), result->files.size(),
        static_cast<unsigned long long>(truth), result->cost.millis(),
        result->files.size() == truth ? "(consistent)" : "(STALE!)");
  }

  std::printf("\ntotal log files indexed: %llu across %llu groups\n",
              static_cast<unsigned long long>(vfs.ns().NumFiles()),
              static_cast<unsigned long long>(cluster.TotalGroups()));
  return 0;
}
