// Dynamic query-directories: the namespace-integration surface from
// Section IV — a path like "/data/reports/?size>1m&mtime<1day" acts as a
// virtual directory whose listing is a live search result.
//
// This example builds a small namespace, then "lists" several query
// directories, printing the files each one would contain.
#include <cstdio>

#include "core/cluster.h"
#include "core/query_parser.h"
#include "fs/vfs.h"
#include "workload/dataset.h"

using namespace propeller;

namespace {

// Resolves a query-directory: parses it, searches, then applies the
// directory-prefix filter exactly (the engine pre-filters by the leaf
// path component; the client finishes with a precise prefix check).
void ListQueryDirectory(core::PropellerClient& client, const fs::Vfs& vfs,
                        const std::string& query_dir) {
  auto parsed = core::ParseQuery(query_dir, vfs.now());
  if (!parsed.ok()) {
    std::printf("  %s -> parse error: %s\n", query_dir.c_str(),
                parsed.status().message().c_str());
    return;
  }
  auto result = client.Search(parsed->predicate);
  if (!result.ok()) {
    std::printf("  %s -> search error\n", query_dir.c_str());
    return;
  }
  std::printf("$ ls %s    (%zu candidates, %.2fms)\n", query_dir.c_str(),
              result->files.size(), result->cost.millis());
  int shown = 0;
  for (index::FileId f : result->files) {
    auto st = vfs.ns().StatById(f);
    if (!st.ok()) continue;
    // Exact prefix check against the query directory.
    if (!parsed->directory.empty() &&
        st->path.rfind(parsed->directory + "/", 0) != 0) {
      continue;
    }
    if (shown < 5) {
      std::printf("  %-60s %12lld bytes\n", st->path.c_str(),
                  static_cast<long long>(st->size));
    }
    ++shown;
  }
  if (shown > 5) std::printf("  ... and %d more\n", shown - 5);
  std::printf("\n");
}

}  // namespace

int main() {
  core::ClusterConfig config;
  config.index_nodes = 2;
  core::PropellerCluster cluster(config);
  auto& client = cluster.client();
  (void)client.CreateIndex({"by_size", index::IndexType::kBTree, {"size"}});
  (void)client.CreateIndex({"by_mtime", index::IndexType::kBTree, {"mtime"}});
  (void)client.CreateIndex({"by_kw", index::IndexType::kKeyword, {"path"}});

  fs::Vfs vfs;
  client.AttachVfs(&vfs);

  // A namespace with two project trees.
  workload::DatasetSpec reports;
  reports.root = "/data/reports";
  reports.num_files = 4000;
  reports.large_file_fraction = 0.05;
  reports.large_size = 1024 * 1024;
  (void)workload::BuildDataset(vfs, reports);
  workload::DatasetSpec archive;
  archive.root = "/data/archive";
  archive.num_files = 4000;
  archive.seed = 99;
  (void)workload::BuildDataset(vfs, archive);

  (void)client.BatchUpdate(workload::UpdatesForNamespace(vfs.ns()),
                           cluster.now());
  cluster.AdvanceTime(6.0);
  std::printf("namespace: %llu files indexed\n\n",
              static_cast<unsigned long long>(vfs.ns().NumFiles()));

  ListQueryDirectory(client, vfs, "/data/reports/?size>1m");
  ListQueryDirectory(client, vfs, "/data/reports/?size>1m&mtime<30day");
  ListQueryDirectory(client, vfs, "/data/archive/?size>256k&mtime<7day");
  ListQueryDirectory(client, vfs, "/data/?keyword:f42");
  return 0;
}
