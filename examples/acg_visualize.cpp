// ACG visualization: captures the access-causality graph of a (generated)
// application compile — the paper's Fig. 7 is exactly this picture for
// Thrift — and writes Graphviz DOT files: the raw ACG and the 2-way
// partition the multilevel bisector proposes (the paper's "blue circles").
//
//   $ ./acg_visualize [app] [out.dot]      app in {thrift, git, linux}
//   $ dot -Tsvg thrift_acg.dot -o thrift_acg.svg
#include <cstdio>
#include <cstring>
#include <fstream>

#include "acg/acg_builder.h"
#include "fs/vfs.h"
#include "graph/dot.h"
#include "graph/partitioner.h"
#include "trace/trace_gen.h"

using namespace propeller;

int main(int argc, char** argv) {
  const char* app = argc > 1 ? argv[1] : "thrift";
  std::string out_path = argc > 2 ? argv[2] : std::string(app) + "_acg.dot";

  trace::AppProfile profile;
  if (std::strcmp(app, "thrift") == 0) {
    profile = trace::ThriftProfile();
  } else if (std::strcmp(app, "git") == 0) {
    profile = trace::GitProfile();
  } else if (std::strcmp(app, "linux") == 0) {
    profile = trace::LinuxKernelProfile();
    std::fprintf(stderr, "warning: the linux ACG has ~6M edges; the DOT "
                         "file will be very large\n");
  } else {
    std::fprintf(stderr, "unknown app '%s' (thrift|git|linux)\n", app);
    return 1;
  }

  // Capture the ACG by "compiling" the application through the Vfs.
  fs::Vfs vfs;
  acg::AcgBuilder builder;
  vfs.AddListener(&builder);
  trace::TraceGenerator gen(profile, /*seed=*/5);
  if (auto st = gen.Materialize(vfs); !st.ok()) {
    std::fprintf(stderr, "materialize: %s\n", st.ToString().c_str());
    return 1;
  }
  uint64_t pid = 1;
  if (auto st = gen.RunExecution(vfs, &pid); !st.ok()) {
    std::fprintf(stderr, "execution: %s\n", st.ToString().c_str());
    return 1;
  }
  acg::Acg acg = builder.TakeDelta();

  auto comps = acg.Components();
  std::printf("%s ACG: %llu files, %llu causal edges (total weight %llu), "
              "%zu connected component(s)\n",
              app, (unsigned long long)acg.NumVertices(),
              (unsigned long long)acg.NumEdges(),
              (unsigned long long)acg.TotalWeight(), comps.size());
  for (size_t i = 0; i < comps.size() && i < 5; ++i) {
    std::printf("  component %zu: %zu files\n", i, comps[i].size());
  }

  // Partition the projection and color the DOT by partition side.
  acg::Acg::Projection proj = acg.Project();
  graph::Bisection cut = graph::MultilevelBisect(proj.graph);
  std::printf("balanced bisection: %llu / %llu files, cut weight %llu "
              "(%.2f%% of total)\n",
              (unsigned long long)cut.side_weight[0],
              (unsigned long long)cut.side_weight[1],
              (unsigned long long)cut.cut_weight,
              100.0 * cut.CutFraction(proj.graph));

  graph::DotOptions opts;
  opts.graph_name = app;
  opts.label = [&](graph::VertexId v) {
    auto st = vfs.ns().StatById(proj.vertex_to_file[v]);
    if (!st.ok()) return std::string("?");
    // Basename keeps the plot readable.
    size_t slash = st->path.find_last_of('/');
    return st->path.substr(slash + 1);
  };
  opts.cluster = [&](graph::VertexId v) { return static_cast<int>(cut.side[v]); };

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << graph::ToDot(proj.graph, opts);
  std::printf("wrote %s (render with: dot -Tsvg %s -o %s.svg)\n",
              out_path.c_str(), out_path.c_str(), app);
  return 0;
}
